#!/usr/bin/env bash
# Local CI sweep: configure and build each CMake preset, run the
# tier-1 test suite, then the randomized fuzz corpus (ctest -L fuzz).
# The fault-injection corpus (ctest -L fault) additionally runs under
# the asan preset, where a recovery-path use-after-free would be loud.
#
# Usage: tools/ci.sh [preset...]      (default: default check asan tsan;
#                                      every preset sweep starts with the
#                                      hiss_lint and hiss_statecheck
#                                      static passes)
#        tools/ci.sh lint             (static pass only: build hiss_lint,
#                                      run the rule self-test, then lint
#                                      the tree — zero unsuppressed
#                                      findings or the build fails)
#        tools/ci.sh statecheck       (state-coverage pass only: build
#                                      hiss_statecheck, run its fixture
#                                      self-test, require the seeded
#                                      drill fixture to fire every mode
#                                      and the clean fixture to pass,
#                                      then prove the live tree covers
#                                      every field)
#        tools/ci.sh tidy             (optional clang-tidy pass over
#                                      compile_commands.json; no-ops
#                                      gracefully when clang-tidy is
#                                      not installed)
#        tools/ci.sh bench            (regression gate: fresh microbench
#                                      runs vs committed BENCH_*.json;
#                                      fails on >20% items_per_second
#                                      loss of any *Batch median)
#        tools/ci.sh bench --update   (rewrite the committed baselines)
#        tools/ci.sh snapshot         (snapshot fidelity leg: a run
#                                      restored from a mid-warmup
#                                      snapshot must produce byte-
#                                      identical stats to the cold
#                                      run, with and without fault
#                                      injection; first divergence
#                                      reported by tools/trace_diff)
#        tools/ci.sh nosimd           (portable-kernel leg: build with
#                                      HISS_SIMD=OFF, run the lint gate
#                                      plus the substrate-equivalence
#                                      suites, proving the scalar
#                                      fallback has not rotted)
#        tools/ci.sh campaign [preset...]
#                                     (crash-drill leg, default presets
#                                      default check asan: shard a grid
#                                      across two hiss_campaign
#                                      processes, SIGKILL one mid-
#                                      flight, resume it, and require
#                                      the merged CSV byte-identical
#                                      to an uninterrupted reference
#                                      run)
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)

# `lint` mode: the static determinism/discipline gate (docs/TESTING.md
# "Static checks"). Builds only the analyzer and its self-test, so it
# is the cheapest CI entry point and runs before the preset sweeps.
run_lint() {
    cmake --preset default
    cmake --build --preset default -j "$jobs" \
        --target hiss_lint hiss_lint_selftest
    build-default/tools/lint/hiss_lint_selftest \
        --gtest_brief=1
    build-default/tools/lint/hiss_lint --root .
    echo "ci: lint gate passed"
}
if [ "${1-}" = "lint" ]; then
    run_lint
    exit 0
fi

# `statecheck` mode: the cross-TU state-coverage gate (docs/TESTING.md
# "Static checks"). Like the lint gate it needs only the analyzer, so
# it also runs before the preset builds. The fixture drill mirrors the
# lint selftest pattern: the seeded "field added but not serialized"
# corpus must fire every mode, and the clean corpus must stay silent,
# proving the gate can actually fail before we trust its green.
run_statecheck() {
    cmake --preset default
    cmake --build --preset default -j "$jobs" \
        --target hiss_statecheck hiss_statecheck_selftest
    build-default/tools/statecheck/hiss_statecheck_selftest \
        --gtest_brief=1
    local sc=build-default/tools/statecheck/hiss_statecheck
    local drill_out
    drill_out=$("$sc" --root tests/statecheck_fixtures --format=gcc \
        drill || true)
    local rule
    for rule in state-save state-restore state-hash cell-key; do
        echo "$drill_out" | grep -q "\[$rule\]" || {
            echo "ci: statecheck FAILED: drill fixture did not fire" \
                 "$rule"
            exit 1
        }
    done
    if "$sc" --root tests/statecheck_fixtures drill > /dev/null; then
        echo "ci: statecheck FAILED: drill fixture passed clean"
        exit 1
    fi
    "$sc" --root tests/statecheck_fixtures clean
    "$sc" --root .
    echo "ci: statecheck gate passed"
}
if [ "${1-}" = "statecheck" ]; then
    run_statecheck
    exit 0
fi

# `tidy` mode: optional clang-tidy sweep. Not a gate — the container
# may not ship clang-tidy; skip loudly rather than fail.
if [ "${1-}" = "tidy" ]; then
    if ! command -v clang-tidy >/dev/null 2>&1; then
        echo "ci: tidy skipped (clang-tidy not installed)"
        exit 0
    fi
    cmake --preset default
    files=$(git ls-files 'src/*.cc' 'tools/*.cc' | grep -v '^tools/lint/')
    # shellcheck disable=SC2086
    clang-tidy -p build-default --quiet $files
    echo "ci: tidy pass finished"
    exit 0
fi

# `bench` mode: build the RelWithDebInfo preset, run the substrate and
# event-queue microbenchmarks fresh, and gate on the committed
# baselines. The gated figures are the items_per_second medians of the
# *Batch benchmarks — the batching win this repo's hot paths rest on
# (see docs/TESTING.md); scalar medians and stddev/cv rows are noise
# and stay ungated.
if [ "${1-}" = "bench" ]; then
    update=false
    [ "${2-}" = "--update" ] && update=true
    cmake --preset default
    cmake --build --preset default -j "$jobs" \
        --target microbench_substrate microbench_event_queue \
                 microbench_snapshot microbench_campaign
    bench_flags=(--benchmark_format=json --benchmark_min_time=0.5
                 --benchmark_repetitions=3
                 --benchmark_report_aggregates_only=true)
    tmpdir=$(mktemp -d)
    trap 'rm -rf "$tmpdir"' EXIT
    build-default/bench/microbench_substrate "${bench_flags[@]}" \
        > "$tmpdir/BENCH_substrate.json"
    build-default/bench/microbench_event_queue "${bench_flags[@]}" \
        > "$tmpdir/BENCH_event_queue.json"
    build-default/bench/microbench_snapshot "${bench_flags[@]}" \
        > "$tmpdir/BENCH_snapshot.json"
    build-default/bench/microbench_campaign "${bench_flags[@]}" \
        > "$tmpdir/BENCH_campaign.json"

    # The warm-start engine must keep paying for itself: the
    # cold/warm sweep ratio recorded by SnapshotSweepSpeedup has to
    # stay at 2x or better (ISSUE 8's acceptance floor).
    if ! awk '
        /"name":/ { gsub(/[",]/, ""); name = $2 }
        /"speedup":/ {
            gsub(/,/, "")
            if (name ~ /SnapshotSweepSpeedup/ && name ~ /_median$/) {
                printf "ci: bench snapshot warm-sweep speedup %.2fx\n", $2
                if ($2 + 0 < 2.0) exit 1
            }
        }' "$tmpdir/BENCH_snapshot.json"; then
        echo "ci: bench FAILED: warm-sweep speedup fell below 2x"
        exit 1
    fi

    # The campaign result cache must keep paying for itself: the
    # cold-grid/cache-hit-resume ratio recorded by
    # CampaignResumeSpeedup has to stay at 5x or better (ISSUE 9's
    # acceptance floor).
    if ! awk '
        /"name":/ { gsub(/[",]/, ""); name = $2 }
        /"speedup":/ {
            gsub(/,/, "")
            if (name ~ /CampaignResumeSpeedup/ && name ~ /_median$/) {
                printf "ci: bench campaign resume speedup %.2fx\n", $2
                if ($2 + 0 < 5.0) exit 1
            }
        }' "$tmpdir/BENCH_campaign.json"; then
        echo "ci: bench FAILED: campaign resume speedup fell below 5x"
        exit 1
    fi

    if $update; then
        cp "$tmpdir/BENCH_substrate.json" BENCH_substrate.json
        cp "$tmpdir/BENCH_event_queue.json" BENCH_event_queue.json
        cp "$tmpdir/BENCH_snapshot.json" BENCH_snapshot.json
        cp "$tmpdir/BENCH_campaign.json" BENCH_campaign.json
        echo "ci: bench baselines rewritten (BENCH_substrate.json," \
             "BENCH_event_queue.json, BENCH_snapshot.json," \
             "BENCH_campaign.json)"
        exit 0
    fi

    fail=0
    for b in substrate event_queue snapshot campaign; do
        base="BENCH_$b.json"
        fresh="$tmpdir/BENCH_$b.json"
        if [ ! -f "$base" ]; then
            echo "ci: bench: $base missing (run tools/ci.sh bench --update)"
            fail=1
            continue
        fi
        # Pair each "name" with the following "items_per_second"; gate
        # fresh/base >= 0.8 for every *Batch median in the baseline.
        if ! awk -v thresh=0.8 '
            /"name":/ { gsub(/[",]/, ""); name = $2 }
            /"items_per_second":/ {
                gsub(/,/, "")
                value = $2 + 0
                if (name ~ /Batch.*_median$/) {
                    if (NR == FNR) base[name] = value
                    else fresh[name] = value
                }
            }
            END {
                status = 0
                for (n in base) {
                    if (!(n in fresh)) {
                        printf "ci: bench: %s missing from fresh run\n", n
                        status = 1
                        continue
                    }
                    ratio = fresh[n] / base[n]
                    if (ratio < thresh) {
                        printf "ci: bench REGRESSION %s: %.3e -> %.3e items/s (%.2fx)\n", \
                               n, base[n], fresh[n], ratio
                        status = 1
                    } else {
                        printf "ci: bench ok %-40s %.2fx of baseline\n", n, ratio
                    }
                }
                exit status
            }' "$base" "$fresh"; then
            fail=1
        fi
    done
    if [ "$fail" -ne 0 ]; then
        echo "ci: bench gate FAILED (>20% regression or missing data;" \
             "refresh intentionally with tools/ci.sh bench --update)"
        exit 1
    fi
    echo "ci: bench gate passed"
    exit 0
fi

# `snapshot` mode: end-to-end restore fidelity through the CLI. A
# run restored from a mid-warmup snapshot must produce byte-identical
# stats/CSV dumps and stdout (modulo wall-clock and snapshot progress
# lines) to the cold run that never stopped. Exercised twice: clean,
# and with the full fault-injection schedule armed (watchdogs, loss
# ledger, RNG-driven IRQ fates all cross the snapshot boundary).
run_snapshot() {
    cmake --preset default
    cmake --build --preset default -j "$jobs" \
        --target hiss_sim trace_diff
    local sim=build-default/tools/hiss_sim
    local differ=build-default/tools/trace_diff
    local tmpdir
    tmpdir=$(mktemp -d)
    # Not `trap ... EXIT`: bench mode owns that slot when sourced.
    local base="--cpu x264 --gpu sssp --duration 30 --seed 9"
    local faulty="$base --fault-drop-irq 0.2 --fault-dup-irq 0.15 \
--fault-delay-irq 0.2 --fault-delay-ipi 0.1 --fault-stall-kworker 0.1 \
--fault-lose-signal 0.1 --fault-timeout 150 --fault-retries 4"
    local leg flags
    for leg in clean fault; do
        flags="$base"
        [ "$leg" = fault ] && flags="$faulty"
        # shellcheck disable=SC2086
        $sim $flags --stats "$tmpdir/$leg.cold.stats" \
            --csv "$tmpdir/$leg.cold.csv" > "$tmpdir/$leg.cold.out"
        # shellcheck disable=SC2086
        $sim $flags --snapshot-save "$tmpdir/$leg.hsnap" \
            --snapshot-at 13 --stats "$tmpdir/$leg.save.stats" \
            --csv "$tmpdir/$leg.save.csv" > "$tmpdir/$leg.save.out"
        # shellcheck disable=SC2086
        $sim $flags --snapshot-load "$tmpdir/$leg.hsnap" \
            --stats "$tmpdir/$leg.warm.stats" \
            --csv "$tmpdir/$leg.warm.csv" > "$tmpdir/$leg.warm.out"
        local variant kind
        for variant in save warm; do
            for kind in stats csv; do
                $differ "$tmpdir/$leg.cold.$kind" \
                        "$tmpdir/$leg.$variant.$kind" || {
                    echo "ci: snapshot leg FAILED:" \
                         "$leg $variant $kind diverged"
                    rm -rf "$tmpdir"
                    exit 1
                }
            done
            $differ --ignore "host:" --ignore "snapshot:" \
                    "$tmpdir/$leg.cold.out" \
                    "$tmpdir/$leg.$variant.out" || {
                echo "ci: snapshot leg FAILED: $leg $variant stdout" \
                     "diverged"
                rm -rf "$tmpdir"
                exit 1
            }
        done
        echo "ci: snapshot leg ($leg) byte-identical"
    done
    rm -rf "$tmpdir"
    echo "ci: snapshot leg passed"
}
if [ "${1-}" = "snapshot" ]; then
    run_snapshot
    exit 0
fi

# `nosimd` mode: build with the SIMD kernels compiled out and run the
# suites that pin the cache substrate (SubstrateBatch.* and the Cache
# unit tests have no ctest label, so select by name), plus the lint
# gate from the same tree. Keeps the portable fallback — what non-x86
# hosts and HISS_SIMD=OFF builds actually run — continuously tested.
run_nosimd() {
    cmake --preset nosimd
    cmake --build --preset nosimd -j "$jobs" \
        --target hiss_tests hiss_lint hiss_lint_selftest
    build-nosimd/tools/lint/hiss_lint_selftest --gtest_brief=1
    build-nosimd/tools/lint/hiss_lint --root .
    ctest --test-dir build-nosimd --output-on-failure -j "$jobs" \
        -R 'SubstrateBatch|Cache'
    echo "ci: nosimd leg passed"
}
if [ "${1-}" = "nosimd" ]; then
    run_nosimd
    exit 0
fi

# `campaign` mode: the crash-resume drill (docs/TESTING.md "Campaign
# sweeps"). Two shards split an 8-cell grid; shard 0 is SIGKILLed the
# moment its first result record lands, then resumed. The engine's
# contract — write-then-rename records, content-addressed keys,
# resume-by-cache-scan — makes the merged CSV byte-identical to an
# uninterrupted reference run; tools/trace_diff reports the first
# divergence if it is not.
run_campaign() {
    local preset="${1:-default}"
    cmake --preset "$preset"
    cmake --build --preset "$preset" -j "$jobs" \
        --target hiss_campaign trace_diff
    local camp="build-$preset/tools/hiss_campaign"
    local differ="build-$preset/tools/trace_diff"
    local tmpdir
    tmpdir=$(mktemp -d)
    # Cells long enough (~40 ms wall each) that the SIGKILL lands
    # while the victim still has work in flight.
    local grid="--gpu ubench --seeds 4 --qos 0,0.05 --duration 40"

    # Reference: the same grid, never interrupted.
    # shellcheck disable=SC2086
    $camp build --dir "$tmpdir/ref" $grid
    $camp run --dir "$tmpdir/ref" --jobs 2
    $camp merge --dir "$tmpdir/ref" --out "$tmpdir/ref.csv"

    # Crash drill: SIGKILL shard 0 once its first record is on disk.
    # shellcheck disable=SC2086
    $camp build --dir "$tmpdir/drill" $grid
    $camp run --dir "$tmpdir/drill" --shard 0/2 --jobs 1 \
        > /dev/null &
    local victim=$!
    local tries=0
    until ls "$tmpdir/drill/cache/"*.rec > /dev/null 2>&1; do
        tries=$((tries + 1))
        if [ "$tries" -gt 3000 ]; then
            echo "ci: campaign leg FAILED: no record ever appeared"
            kill -9 "$victim" 2> /dev/null || true
            rm -rf "$tmpdir"
            exit 1
        fi
        sleep 0.01
    done
    kill -9 "$victim" 2> /dev/null || true
    wait "$victim" 2> /dev/null || true

    # Resume the killed shard (it must serve at least one cell from
    # the cache — the records the victim committed survive the kill),
    # run the sibling shard, and merge.
    $camp resume --dir "$tmpdir/drill" --shard 0/2 --jobs 1 \
        | tee "$tmpdir/resume.out"
    grep -q "cached=[1-9]" "$tmpdir/resume.out" || {
        echo "ci: campaign leg FAILED: resume served nothing from" \
             "the cache"
        rm -rf "$tmpdir"
        exit 1
    }
    $camp run --dir "$tmpdir/drill" --shard 1/2 --jobs 2
    $camp merge --dir "$tmpdir/drill" --out "$tmpdir/drill.csv"
    $differ "$tmpdir/ref.csv" "$tmpdir/drill.csv" || {
        echo "ci: campaign leg FAILED: resumed merge diverged from" \
             "the uninterrupted reference"
        rm -rf "$tmpdir"
        exit 1
    }
    rm -rf "$tmpdir"
    echo "ci: campaign leg ($preset) crash-drill byte-identical"
}
if [ "${1-}" = "campaign" ]; then
    shift
    legs=("$@")
    if [ "${#legs[@]}" -eq 0 ]; then
        legs=(default check asan)
    fi
    for p in "${legs[@]}"; do
        run_campaign "$p"
    done
    echo "ci: campaign leg passed (${legs[*]})"
    exit 0
fi

presets=("$@")
if [ "${#presets[@]}" -eq 0 ]; then
    presets=(default check asan tsan)
fi

# Static passes first: cheapest gates, and a determinism- or
# state-coverage-contract violation should fail CI before an hour of
# sanitizer builds.
run_lint
run_statecheck

for p in "${presets[@]}"; do
    echo "=== preset: $p ==="
    cmake --preset "$p"
    cmake --build --preset "$p" -j "$jobs"
    ctest --test-dir "build-$p" --output-on-failure -j "$jobs" \
        -LE 'fuzz|fault'
    ctest --test-dir "build-$p" --output-on-failure -L fuzz
    if [ "$p" = "asan" ]; then
        ctest --test-dir "build-$p" --output-on-failure -L fault
    fi
    # The crash-resume drill rides the presets it is specified for.
    case "$p" in
      default|check|asan) run_campaign "$p" ;;
    esac
done

# The full sweep also exercises the portable-kernel build and the
# snapshot restore-fidelity leg.
run_nosimd
run_snapshot

echo "ci: all presets green (${presets[*]} nosimd snapshot)"
