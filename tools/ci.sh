#!/usr/bin/env bash
# Local CI sweep: configure and build each CMake preset, run the
# tier-1 test suite, then the randomized fuzz corpus (ctest -L fuzz).
#
# Usage: tools/ci.sh [preset...]   (default: default check asan tsan)
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ "${#presets[@]}" -eq 0 ]; then
    presets=(default check asan tsan)
fi

jobs=$(nproc 2>/dev/null || echo 2)

for p in "${presets[@]}"; do
    echo "=== preset: $p ==="
    cmake --preset "$p"
    cmake --build --preset "$p" -j "$jobs"
    ctest --test-dir "build-$p" --output-on-failure -j "$jobs" -LE fuzz
    ctest --test-dir "build-$p" --output-on-failure -L fuzz
done

echo "ci: all presets green (${presets[*]})"
