/**
 * @file
 * hiss_sim — command-line driver for the HISS simulator.
 *
 * Runs an arbitrary CPU-app / GPU-workload pairing under any
 * combination of mitigations and QoS settings, and reports runtimes,
 * interference metrics, statistics dumps, a /proc/interrupts mirror,
 * and (optionally) a chrome://tracing timeline.
 *
 * Examples:
 *   hiss_sim --cpu x264 --gpu ubench
 *   hiss_sim --cpu facesim --gpu sssp --qos 0.01
 *   hiss_sim --gpu ubench --steer 0 --coalesce 13 --duration 20
 *   hiss_sim --cpu x264 --gpu sssp --trace timeline.json
 *   hiss_sim --cpu x264 --gpu sssp --reps 8 --jobs 4
 */

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/hiss.h"
#include "sim/logging.h"
#include "sim/tracing.h"

namespace {

using namespace hiss;

struct Options
{
    std::vector<std::string> cpu_apps;
    std::string gpu_app;
    bool demand_paging = true;
    bool loop_gpu = false;
    int extra_accelerators = 0;
    int cores = 0; // 0 = testbed default (Table II: 4).
    bool check = false;
    bool steer = false;
    int steer_core = 0;
    double coalesce_us = -1.0;
    bool adaptive_coalesce = false;
    bool monolithic = false;
    double qos_threshold = 0.0;
    ThrottlePolicy qos_policy = ThrottlePolicy::ExponentialBackoff;
    double duration_ms = 0.0; // 0 = until CPU app completes.
    std::uint64_t seed = 1;
    FaultPlan fault;
    int reps = 1;
    int jobs = 0; // 0 = all hardware threads.
    std::string stats_path;
    std::string csv_path;
    std::string trace_path;
    std::string snapshot_save;
    double snapshot_at_ms = 0.0; // 0 = save at the end of the run.
    std::string snapshot_load;
    bool proc_interrupts = false;
    bool describe = false;
    bool list = false;
};

void
usage()
{
    std::printf(
        "hiss_sim — heterogeneous-SoC SSR interference simulator\n"
        "\n"
        "Workloads:\n"
        "  --cpu app[,app...]   PARSEC-like CPU application(s)\n"
        "  --gpu workload       GPU workload (bfs bpt spmv sssp\n"
        "                       xsbench ubench)\n"
        "  --no-demand-paging   pinned GPU memory: no SSRs\n"
        "  --loop-gpu           restart the GPU kernel until the end\n"
        "  --accelerators N     N-1 extra accelerators, same workload\n"
        "\n"
        "Mitigations (paper Section V):\n"
        "  --steer [core]       MSI steering to a single core\n"
        "  --coalesce [us]      interrupt coalescing (default 13 us)\n"
        "  --adaptive-coalesce  rate-adaptive coalescing window\n"
        "  --monolithic         monolithic bottom-half handler\n"
        "\n"
        "QoS (paper Section VI):\n"
        "  --qos threshold      cap SSR CPU-time fraction (e.g. 0.01)\n"
        "  --qos-policy P       backoff (paper) or bucket\n"
        "\n"
        "Fault injection (docs/MODEL.md failure model):\n"
        "  --fault-ppr-capacity N   finite PPR queue: overflow INVALID\n"
        "  --fault-drop-irq p       drop each SSR MSI with prob p\n"
        "  --fault-dup-irq p        duplicate each SSR MSI with prob p\n"
        "  --fault-delay-irq p      delay each SSR MSI with prob p\n"
        "  --fault-delay-ipi p      delay each resched IPI with prob p\n"
        "  --fault-stall-kworker p  transiently stall kworkers, prob p\n"
        "  --fault-lose-signal p    lose GPU signal-queue entries\n"
        "  --fault-timeout us       driver watchdog timeout (0 = off)\n"
        "  --fault-retries N        GPU translate retries before abort\n"
        "\n"
        "Run control and output:\n"
        "  --cores N            CPU core count (default 4, Table II)\n"
        "  --check              arm the runtime invariant layer\n"
        "  --duration ms        fixed window (default: CPU app end)\n"
        "  --seed N             experiment seed (default 1)\n"
        "  --reps N             average N runs, seeds seed..seed+N-1\n"
        "  --jobs N             parallel workers for --reps\n"
        "                       (default: all hardware threads)\n"
        "  --stats FILE|-       dump all statistics\n"
        "  --csv FILE           dump statistics as CSV\n"
        "  --trace FILE.json    chrome://tracing timeline\n"
        "  --snapshot-save FILE serialize simulator state to FILE\n"
        "  --snapshot-at ms     when to save (default: end of run)\n"
        "  --snapshot-load FILE restore state from FILE, then run on;\n"
        "                       needs the same workload flags + seed\n"
        "  --proc-interrupts    print the /proc/interrupts mirror\n"
        "  --describe           print the system configuration\n"
        "  --list               list available workloads\n");
}

/**
 * Strict numeric parsing: the whole token must convert and land in
 * range, otherwise the flag dies with a FatalError instead of
 * silently running atoi()'s best guess (e.g. "--reps 1e3" -> 1).
 */
long long
parseInt(const char *flag, const char *text, long long lo, long long hi)
{
    errno = 0;
    char *end = nullptr;
    const long long value = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE)
        fatal("%s: '%s' is not an integer", flag, text);
    if (value < lo || value > hi)
        fatal("%s: %lld is out of range [%lld, %lld]", flag, value, lo,
              hi);
    return value;
}

std::uint64_t
parseSeed(const char *flag, const char *text)
{
    errno = 0;
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE
        || text[0] == '-')
        fatal("%s: '%s' is not a valid seed", flag, text);
    return value;
}

double
parseReal(const char *flag, const char *text, double lo, double hi)
{
    errno = 0;
    char *end = nullptr;
    const double value = std::strtod(text, &end);
    if (end == text || *end != '\0' || errno == ERANGE)
        fatal("%s: '%s' is not a number", flag, text);
    if (!(value >= lo && value <= hi))
        fatal("%s: %g is out of range [%g, %g]", flag, value, lo, hi);
    return value;
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    auto need_value = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            return nullptr;
        return argv[++i];
    };
    auto optional_value = [&](int &i) -> const char * {
        if (i + 1 >= argc || argv[i + 1][0] == '-')
            return nullptr;
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage();
            return false;
        } else if (arg == "--cpu") {
            const char *v = need_value(i);
            if (v == nullptr)
                fatal("--cpu needs a value");
            std::string list = v;
            std::size_t pos = 0;
            while (pos != std::string::npos) {
                const std::size_t comma = list.find(',', pos);
                opt.cpu_apps.push_back(
                    list.substr(pos, comma == std::string::npos
                                         ? comma : comma - pos));
                pos = comma == std::string::npos ? comma : comma + 1;
            }
        } else if (arg == "--gpu") {
            const char *v = need_value(i);
            if (v == nullptr)
                fatal("--gpu needs a value");
            opt.gpu_app = v;
        } else if (arg == "--no-demand-paging") {
            opt.demand_paging = false;
        } else if (arg == "--loop-gpu") {
            opt.loop_gpu = true;
        } else if (arg == "--accelerators") {
            const char *v = need_value(i);
            if (v == nullptr)
                fatal("--accelerators needs a value");
            opt.extra_accelerators = static_cast<int>(
                parseInt("--accelerators", v, 1, 64)) - 1;
        } else if (arg == "--steer") {
            opt.steer = true;
            if (const char *v = optional_value(i))
                opt.steer_core = static_cast<int>(
                    parseInt("--steer", v, 0, 255));
        } else if (arg == "--coalesce") {
            opt.coalesce_us = 13.0;
            if (const char *v = optional_value(i))
                opt.coalesce_us =
                    parseReal("--coalesce", v, 1e-3, 1e4);
        } else if (arg == "--adaptive-coalesce") {
            opt.adaptive_coalesce = true;
        } else if (arg == "--monolithic") {
            opt.monolithic = true;
        } else if (arg == "--qos") {
            const char *v = need_value(i);
            if (v == nullptr)
                fatal("--qos needs a threshold");
            opt.qos_threshold = parseReal("--qos", v, 0.0, 1.0);
            if (opt.qos_threshold <= 0.0)
                fatal("--qos: threshold must be in (0, 1]");
        } else if (arg == "--qos-policy") {
            const char *v = need_value(i);
            if (v == nullptr)
                fatal("--qos-policy needs a value");
            if (std::strcmp(v, "backoff") == 0)
                opt.qos_policy = ThrottlePolicy::ExponentialBackoff;
            else if (std::strcmp(v, "bucket") == 0)
                opt.qos_policy = ThrottlePolicy::TokenBucket;
            else
                fatal("unknown qos policy: %s", v);
        } else if (arg == "--cores") {
            const char *v = need_value(i);
            if (v == nullptr)
                fatal("--cores needs a value");
            opt.cores = static_cast<int>(
                parseInt("--cores", v, 1, 256));
        } else if (arg == "--check") {
            opt.check = true;
        } else if (arg == "--duration") {
            const char *v = need_value(i);
            if (v == nullptr)
                fatal("--duration needs a value");
            opt.duration_ms = parseReal("--duration", v, 1e-6, 1e6);
        } else if (arg == "--seed") {
            const char *v = need_value(i);
            if (v == nullptr)
                fatal("--seed needs a value");
            opt.seed = parseSeed("--seed", v);
        } else if (arg == "--reps") {
            const char *v = need_value(i);
            if (v == nullptr)
                fatal("--reps needs a value");
            opt.reps = static_cast<int>(
                parseInt("--reps", v, 1, 1'000'000));
        } else if (arg == "--jobs") {
            const char *v = need_value(i);
            if (v == nullptr)
                fatal("--jobs needs a value");
            opt.jobs = static_cast<int>(
                parseInt("--jobs", v, 0, 4096));
        } else if (arg == "--fault-ppr-capacity") {
            const char *v = need_value(i);
            if (v == nullptr)
                fatal("--fault-ppr-capacity needs a value");
            opt.fault.ppr_queue_capacity = static_cast<std::size_t>(
                parseInt("--fault-ppr-capacity", v, 1, 1'000'000));
        } else if (arg == "--fault-drop-irq") {
            const char *v = need_value(i);
            if (v == nullptr)
                fatal("--fault-drop-irq needs a probability");
            opt.fault.irq_drop_prob =
                parseReal("--fault-drop-irq", v, 0.0, 1.0);
        } else if (arg == "--fault-dup-irq") {
            const char *v = need_value(i);
            if (v == nullptr)
                fatal("--fault-dup-irq needs a probability");
            opt.fault.irq_dup_prob =
                parseReal("--fault-dup-irq", v, 0.0, 1.0);
        } else if (arg == "--fault-delay-irq") {
            const char *v = need_value(i);
            if (v == nullptr)
                fatal("--fault-delay-irq needs a probability");
            opt.fault.irq_delay_prob =
                parseReal("--fault-delay-irq", v, 0.0, 1.0);
        } else if (arg == "--fault-delay-ipi") {
            const char *v = need_value(i);
            if (v == nullptr)
                fatal("--fault-delay-ipi needs a probability");
            opt.fault.ipi_delay_prob =
                parseReal("--fault-delay-ipi", v, 0.0, 1.0);
        } else if (arg == "--fault-stall-kworker") {
            const char *v = need_value(i);
            if (v == nullptr)
                fatal("--fault-stall-kworker needs a probability");
            opt.fault.kworker_stall_prob =
                parseReal("--fault-stall-kworker", v, 0.0, 1.0);
        } else if (arg == "--fault-lose-signal") {
            const char *v = need_value(i);
            if (v == nullptr)
                fatal("--fault-lose-signal needs a probability");
            opt.fault.signal_loss_prob =
                parseReal("--fault-lose-signal", v, 0.0, 1.0);
        } else if (arg == "--fault-timeout") {
            const char *v = need_value(i);
            if (v == nullptr)
                fatal("--fault-timeout needs microseconds");
            opt.fault.request_timeout =
                usToTicks(parseReal("--fault-timeout", v, 0.0, 1e6));
        } else if (arg == "--fault-retries") {
            const char *v = need_value(i);
            if (v == nullptr)
                fatal("--fault-retries needs a value");
            opt.fault.max_retries = static_cast<int>(
                parseInt("--fault-retries", v, 0, 1'000));
        } else if (arg == "--stats") {
            const char *v = need_value(i);
            if (v == nullptr)
                fatal("--stats needs a path");
            opt.stats_path = v;
        } else if (arg == "--csv") {
            const char *v = need_value(i);
            if (v == nullptr)
                fatal("--csv needs a path");
            opt.csv_path = v;
        } else if (arg == "--trace") {
            const char *v = need_value(i);
            if (v == nullptr)
                fatal("--trace needs a path");
            opt.trace_path = v;
        } else if (arg == "--snapshot-save") {
            const char *v = need_value(i);
            if (v == nullptr)
                fatal("--snapshot-save needs a path");
            opt.snapshot_save = v;
        } else if (arg == "--snapshot-at") {
            const char *v = need_value(i);
            if (v == nullptr)
                fatal("--snapshot-at needs milliseconds");
            opt.snapshot_at_ms =
                parseReal("--snapshot-at", v, 1e-6, 1e6);
        } else if (arg == "--snapshot-load") {
            const char *v = need_value(i);
            if (v == nullptr)
                fatal("--snapshot-load needs a path");
            opt.snapshot_load = v;
        } else if (arg == "--proc-interrupts") {
            opt.proc_interrupts = true;
        } else if (arg == "--describe") {
            opt.describe = true;
        } else if (arg == "--list") {
            opt.list = true;
        } else {
            fatal("unknown argument: %s (try --help)", arg.c_str());
        }
    }

    // Cross-flag sanity. Repetitions use seeds seed..seed+reps-1, so
    // the range must neither wrap nor reuse a seed.
    if (opt.reps > 1
        && opt.seed > UINT64_MAX
               - (static_cast<std::uint64_t>(opt.reps) - 1))
        fatal("--seed %llu with --reps %d overflows the seed space",
              static_cast<unsigned long long>(opt.seed), opt.reps);
    const int cores = opt.cores > 0 ? opt.cores : SystemConfig{}.num_cores;
    if (opt.steer && opt.steer_core >= cores)
        fatal("--steer %d: core out of range (system has %d cores)",
              opt.steer_core, cores);
    if (opt.snapshot_at_ms > 0.0 && opt.snapshot_save.empty())
        fatal("--snapshot-at needs --snapshot-save");
    if ((!opt.snapshot_save.empty() || !opt.snapshot_load.empty())
        && opt.check)
        fatal("snapshots with the invariant monitor armed (--check) "
              "are unsupported");
    if ((!opt.snapshot_save.empty() || !opt.snapshot_load.empty())
        && opt.reps > 1)
        fatal("--snapshot-save/--snapshot-load apply to a single "
              "run, not --reps averaging");
    return true;
}

/**
 * Host-performance footer: wall-clock, simulated-ticks/sec, and
 * events/sec, so BENCH_*.json runs can track simulator throughput.
 */
void
printHostThroughput(std::chrono::steady_clock::time_point wall_start,
                    Tick simulated, std::uint64_t events)
{
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now()
                                      - wall_start)
            .count();
    const double safe_s = wall_s > 0.0 ? wall_s : 1e-9;
    std::printf("host: wall=%.3f s  %.1f Mticks/s",
                wall_s, static_cast<double>(simulated) / safe_s / 1e6);
    if (events > 0) // The averaged path has no per-system event count.
        std::printf("  %.2f Mevents/s (%llu events)",
                    static_cast<double>(events) / safe_s / 1e6,
                    static_cast<unsigned long long>(events));
    std::printf("\n");
}

/** --reps path: average repetitions, run in parallel on --jobs. */
int
runAveraged(const Options &opt)
{
    if (opt.cpu_apps.size() > 1 || opt.extra_accelerators > 0
        || !opt.trace_path.empty() || !opt.stats_path.empty()
        || !opt.csv_path.empty() || opt.proc_interrupts)
        fatal("--reps averages over runs: use at most one --cpu and "
              "no --accelerators/--trace/--stats/--csv/"
              "--proc-interrupts");

    ExperimentConfig config;
    config.seed = opt.seed;
    config.mitigation.steer_to_single_core = opt.steer;
    config.mitigation.steer_core = opt.steer_core;
    config.mitigation.interrupt_coalescing = opt.coalesce_us >= 0.0;
    if (opt.coalesce_us > 0.0)
        config.mitigation.coalesce_window = usToTicks(opt.coalesce_us);
    config.mitigation.monolithic_bottom_half = opt.monolithic;
    config.qos_threshold = opt.qos_threshold;
    config.gpu_demand_paging = opt.demand_paging;
    config.check_invariants = opt.check;
    config.fault = opt.fault;
    if (opt.duration_ms > 0.0)
        config.rate_window = msToTicks(opt.duration_ms);

    // The base testbed must outlive the batch: cells only keep the
    // pointer. runAveraged blocks until every repetition finishes, so
    // a stack-local SystemConfig is safe here. It carries the options
    // ExperimentConfig cannot express: core count, the adaptive
    // coalescing mode, and the QoS throttle policy.
    SystemConfig base;
    if (opt.cores > 0)
        base.num_cores = opt.cores;
    base.iommu.adaptive_coalescing = opt.adaptive_coalesce;
    base.kernel.qos.policy = opt.qos_policy;
    config.base_system = &base;

    const std::string cpu_app =
        opt.cpu_apps.empty() ? "" : opt.cpu_apps.front();
    const MeasureMode mode = !cpu_app.empty()
        ? (opt.gpu_app.empty() ? MeasureMode::CpuOnly
                               : MeasureMode::CpuPrimary)
        : MeasureMode::GpuOnly;

    const auto wall_start = std::chrono::steady_clock::now();
    const ExperimentBatch batch(opt.jobs);
    const RunResult avg = batch.runAveraged(cpu_app, opt.gpu_app,
                                            config, mode, opt.reps);

    std::printf("averaged %d runs (seeds %llu..%llu, %d jobs)\n",
                opt.reps, static_cast<unsigned long long>(opt.seed),
                static_cast<unsigned long long>(
                    opt.seed + static_cast<std::uint64_t>(opt.reps)
                    - 1),
                batch.jobs());
    if (!cpu_app.empty())
        std::printf("  %-16s mean runtime %.3f ms\n", cpu_app.c_str(),
                    avg.cpu_runtime_ms);
    if (!opt.gpu_app.empty())
        std::printf("  %-16s mean runtime %.3f ms  faults=%llu  "
                    "rate=%.0f/s\n",
                    opt.gpu_app.c_str(), avg.gpu_runtime_ms,
                    static_cast<unsigned long long>(
                        avg.faults_resolved),
                    avg.gpu_ssr_rate);
    std::printf("  ssr_cpu=%.1f%%  cc6=%.1f%%  irqs=%llu  "
                "ipis=%llu%s\n",
                100.0 * avg.ssr_cpu_fraction, 100.0 * avg.cc6_fraction,
                static_cast<unsigned long long>(avg.total_irqs),
                static_cast<unsigned long long>(avg.total_ipis),
                avg.hit_time_cap ? "  (hit time cap)" : "");
    const Tick total_ticks = msToTicks(avg.elapsed_ms)
        * static_cast<Tick>(opt.reps);
    printHostThroughput(wall_start, total_ticks, 0);
    return 0;
}

int
run(const Options &opt)
{
    if (opt.list) {
        std::printf("CPU applications:");
        for (const auto &name : parsec::benchmarkNames())
            std::printf(" %s", name.c_str());
        std::printf("\nGPU workloads:");
        for (const auto &name : gpu_suite::workloadNames())
            std::printf(" %s", name.c_str());
        std::printf("\n");
        return 0;
    }

    SystemConfig config;
    config.seed = opt.seed;
    if (opt.cores > 0)
        config.num_cores = opt.cores;
    if (opt.check)
        config.check_invariants = true;
    config.fault = opt.fault;
    MitigationConfig mitigation;
    mitigation.steer_to_single_core = opt.steer;
    mitigation.steer_core = opt.steer_core;
    mitigation.interrupt_coalescing = opt.coalesce_us >= 0.0;
    if (opt.coalesce_us > 0.0)
        mitigation.coalesce_window = usToTicks(opt.coalesce_us);
    mitigation.monolithic_bottom_half = opt.monolithic;
    config.applyMitigations(mitigation);
    config.iommu.adaptive_coalescing = opt.adaptive_coalesce;
    if (opt.qos_threshold > 0.0) {
        config.enableQos(opt.qos_threshold);
        config.kernel.qos.policy = opt.qos_policy;
    }

    if (opt.describe) {
        std::printf("%s", config.describe().c_str());
        return 0;
    }
    if (opt.cpu_apps.empty() && opt.gpu_app.empty())
        fatal("nothing to run: give --cpu and/or --gpu (see --help)");
    if (opt.reps > 1)
        return runAveraged(opt);

    const auto wall_start = std::chrono::steady_clock::now();
    HeteroSystem sys(config);
    std::unique_ptr<TraceWriter> trace;
    if (!opt.trace_path.empty()) {
        trace = std::make_unique<TraceWriter>(opt.trace_path);
        sys.setTraceWriter(trace.get());
    }

    std::vector<CpuApp *> apps;
    for (const auto &name : opt.cpu_apps) {
        CpuApp &app = sys.addCpuApp(parsec::params(name));
        app.start();
        apps.push_back(&app);
    }
    if (!opt.gpu_app.empty()) {
        const GpuWorkloadParams workload = gpu_suite::params(opt.gpu_app);
        sys.launchGpu(workload, opt.demand_paging, opt.loop_gpu);
        for (int a = 0; a < opt.extra_accelerators; ++a)
            sys.addAccelerator().launch(workload, opt.demand_paging,
                                        opt.loop_gpu);
    }

    if (!opt.snapshot_load.empty()) {
        sys.restoreSnapshotFile(opt.snapshot_load);
        std::printf("snapshot: restored %s (t=%.3f ms)\n",
                    opt.snapshot_load.c_str(), ticksToMs(sys.now()));
    }
    if (!opt.snapshot_save.empty() && opt.snapshot_at_ms > 0.0) {
        sys.runUntil(msToTicks(opt.snapshot_at_ms));
        sys.saveSnapshotFile(opt.snapshot_save);
        std::printf("snapshot: saved %s (t=%.3f ms)\n",
                    opt.snapshot_save.c_str(), ticksToMs(sys.now()));
    }

    const Tick cap = opt.duration_ms > 0.0
        ? msToTicks(opt.duration_ms)
        : msToTicks(apps.empty() ? 50.0 : 1000.0);
    if (apps.empty()) {
        sys.runUntil(cap);
    } else {
        sys.runUntilCondition(
            [&apps] {
                for (const CpuApp *app : apps)
                    if (!app->done())
                        return false;
                return true;
            },
            cap);
    }
    // An end-of-run snapshot is taken before finalizeStats() so a
    // later --snapshot-load can keep simulating from unfolded state.
    if (!opt.snapshot_save.empty() && opt.snapshot_at_ms <= 0.0) {
        sys.saveSnapshotFile(opt.snapshot_save);
        std::printf("snapshot: saved %s (t=%.3f ms)\n",
                    opt.snapshot_save.c_str(), ticksToMs(sys.now()));
    }
    sys.finalizeStats();

    // Report.
    std::printf("simulated %.3f ms (seed %llu)\n", ticksToMs(sys.now()),
                static_cast<unsigned long long>(opt.seed));
    for (const CpuApp *app : apps) {
        if (app->done())
            std::printf("  %-16s completed in %.3f ms\n",
                        app->params().name.c_str(),
                        ticksToMs(app->completionTime()));
        else
            std::printf("  %-16s NOT finished (%llu iterations)\n",
                        app->params().name.c_str(),
                        static_cast<unsigned long long>(
                            app->iterationsDone()));
    }
    if (!opt.gpu_app.empty()) {
        const Gpu &gpu = sys.gpu();
        std::printf("  %-16s kernels=%llu faults=%llu rate=%.0f/s",
                    opt.gpu_app.c_str(),
                    static_cast<unsigned long long>(
                        gpu.kernelsCompleted()),
                    static_cast<unsigned long long>(
                        gpu.faultsResolved()),
                    gpu.ssrRate());
        if (gpu.kernelsCompleted() > 0)
            std::printf(" first_kernel=%.3f ms",
                        ticksToMs(gpu.firstCompletionTime()));
        std::printf("\n");
    }
    Tick ssr = 0;
    double cc6 = 0.0;
    for (int c = 0; c < sys.kernel().numCores(); ++c) {
        ssr += sys.kernel().core(c).ssrTicks();
        cc6 += static_cast<double>(sys.kernel().core(c).cc6Ticks());
    }
    const double denom = static_cast<double>(sys.now())
        * sys.kernel().numCores();
    std::printf("  ssr_cpu=%.1f%%  cc6=%.1f%%  ipis=%llu\n",
                100.0 * static_cast<double>(ssr) / denom,
                100.0 * cc6 / denom,
                static_cast<unsigned long long>(
                    sys.kernel().scheduler().ipisSent()));
    printHostThroughput(wall_start, sys.now(),
                        sys.events().numExecuted());

    if (opt.proc_interrupts) {
        std::printf("\n/proc/interrupts:\n");
        sys.kernel().procInterrupts().dump(std::cout);
    }
    if (opt.stats_path == "-") {
        sys.stats().dump(std::cout);
    } else if (!opt.stats_path.empty()) {
        std::ofstream out(opt.stats_path);
        if (!out.is_open())
            fatal("cannot open %s", opt.stats_path.c_str());
        sys.stats().dump(out);
    }
    if (!opt.csv_path.empty()) {
        std::ofstream out(opt.csv_path);
        if (!out.is_open())
            fatal("cannot open %s", opt.csv_path.c_str());
        sys.stats().dumpCsv(out);
    }
    if (trace != nullptr)
        std::printf("trace: %s (%llu events)\n", opt.trace_path.c_str(),
                    static_cast<unsigned long long>(
                        trace->eventsWritten()));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    try {
        if (!parseArgs(argc, argv, opt))
            return 0;
        return run(opt);
    } catch (const FatalError &e) {
        // Always name the active seed so a failing run — invariant
        // violation or fatal() — can be reproduced verbatim.
        std::fprintf(stderr, "hiss_sim: %s (seed %llu)\n", e.what(),
                     static_cast<unsigned long long>(opt.seed));
        return 1;
    }
}
