/**
 * @file
 * hiss_campaign — crash-resumable sweep orchestrator CLI.
 *
 * Drives src/campaign over a campaign directory: build the work
 * manifest once, run any number of shards (concurrently, on separate
 * processes or machines sharing the directory), kill and resume them
 * freely, then merge the content-addressed result cache into one CSV.
 *
 * Examples:
 *   hiss_campaign build --dir camp --cpu x264,freqmine --gpu ubench \
 *       --seeds 3 --all-mitigations --duration 8
 *   hiss_campaign run --dir camp --shard 0/4 --jobs 2
 *   hiss_campaign resume --dir camp --shard 0/4 --jobs 2
 *   hiss_campaign status --dir camp
 *   hiss_campaign merge --dir camp --out results.csv
 *
 * Exit codes: 0 success; 1 fatal error; 2 status says incomplete;
 * 3 run finished but some owned cells settled as failures.
 */

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/hiss.h"
#include "sim/logging.h"

namespace {

using namespace hiss;
using namespace hiss::campaign;

void
usage()
{
    std::printf(
        "hiss_campaign — crash-resumable sharded sweep runner\n"
        "\n"
        "Verbs:\n"
        "  build   enumerate the grid and write the work manifest\n"
        "  run     run this shard's cells (resumes automatically)\n"
        "  resume  alias of run — the scan-and-fill loop is one verb\n"
        "  status  report cache coverage of the whole grid\n"
        "  merge   stream every record into one CSV\n"
        "\n"
        "Common:\n"
        "  --dir DIR            campaign directory (required)\n"
        "\n"
        "build:\n"
        "  --name NAME          campaign name (default: campaign)\n"
        "  --cpu a[,b...]       CPU apps ('' entries = GPU-only)\n"
        "  --gpu x[,y...]       GPU workloads\n"
        "  --seeds N            seeds base..base+N-1 (default 1)\n"
        "  --seed-base S        first seed (default 1)\n"
        "  --all-mitigations    all 8 mitigation combinations\n"
        "  --qos t[,t...]       QoS thresholds (0 = governor off)\n"
        "  --duration ms        rate window (default 8)\n"
        "  --warmup ms          shared warm-state cut (default 0)\n"
        "  --reps N             repetitions per cell (default 1)\n"
        "  --tick-budget ms     simulated-time cap per cell\n"
        "\n"
        "run / resume:\n"
        "  --shard k/K          own cells with index %% K == k "
        "(default 0/1)\n"
        "  --jobs N             worker threads (default: all)\n"
        "  --max-attempts N     retries before caching the failure "
        "(default 3)\n"
        "  --wall-budget ms     host wall budget per cell (0 = off)\n"
        "  --retry-failed       re-run cells with cached failures\n"
        "\n"
        "merge:\n"
        "  --out FILE           merged CSV path (required)\n");
}

long long
parseInt(const char *flag, const char *text, long long lo, long long hi)
{
    errno = 0;
    char *end = nullptr;
    const long long value = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE)
        fatal("%s: '%s' is not an integer", flag, text);
    if (value < lo || value > hi)
        fatal("%s: %lld is out of range [%lld, %lld]", flag, value, lo,
              hi);
    return value;
}

double
parseReal(const char *flag, const char *text, double lo, double hi)
{
    errno = 0;
    char *end = nullptr;
    const double value = std::strtod(text, &end);
    if (end == text || *end != '\0' || errno == ERANGE)
        fatal("%s: '%s' is not a number", flag, text);
    if (!(value >= lo && value <= hi))
        fatal("%s: %g is out of range [%g, %g]", flag, value, lo, hi);
    return value;
}

std::vector<std::string>
splitList(const std::string &list)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos != std::string::npos) {
        const std::size_t comma = list.find(',', pos);
        out.push_back(list.substr(
            pos, comma == std::string::npos ? comma : comma - pos));
        pos = comma == std::string::npos ? comma : comma + 1;
    }
    return out;
}

/** Parse "k/K" into shard index and count. */
void
parseShard(const char *text, CampaignOptions &options)
{
    const char *slash = std::strchr(text, '/');
    if (slash == nullptr)
        fatal("--shard: expected k/K (e.g. 0/4), got '%s'", text);
    const std::string k(text, slash - text);
    options.shard_index = static_cast<int>(
        parseInt("--shard", k.c_str(), 0, 1 << 20));
    options.shard_count = static_cast<int>(
        parseInt("--shard", slash + 1, 1, 1 << 20));
    if (options.shard_index >= options.shard_count)
        fatal("--shard: index %d must be < count %d",
              options.shard_index, options.shard_count);
}

const char *
needValue(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        fatal("%s needs a value", argv[i]);
    return argv[++i];
}

int
cmdBuild(int argc, char **argv, const std::string &dir)
{
    GridSpec spec;
    std::uint64_t seed_base = 1;
    std::size_t seed_count = 1;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--dir") {
            needValue(argc, argv, i);
        } else if (arg == "--name") {
            spec.name = needValue(argc, argv, i);
        } else if (arg == "--cpu") {
            spec.cpu_apps = splitList(needValue(argc, argv, i));
        } else if (arg == "--gpu") {
            spec.gpu_apps = splitList(needValue(argc, argv, i));
        } else if (arg == "--seeds") {
            seed_count = static_cast<std::size_t>(parseInt(
                "--seeds", needValue(argc, argv, i), 1, 1 << 20));
        } else if (arg == "--seed-base") {
            seed_base = static_cast<std::uint64_t>(parseInt(
                "--seed-base", needValue(argc, argv, i), 1,
                1LL << 60));
        } else if (arg == "--all-mitigations") {
            spec.all_mitigations = true;
        } else if (arg == "--qos") {
            spec.qos_thresholds.clear();
            for (const std::string &t :
                 splitList(needValue(argc, argv, i)))
                spec.qos_thresholds.push_back(
                    parseReal("--qos", t.c_str(), 0.0, 1.0));
        } else if (arg == "--duration") {
            spec.duration_ms = parseReal(
                "--duration", needValue(argc, argv, i), 1e-6, 1e6);
        } else if (arg == "--warmup") {
            spec.warmup_ms = parseReal(
                "--warmup", needValue(argc, argv, i), 0.0, 1e6);
        } else if (arg == "--reps") {
            spec.reps = static_cast<int>(parseInt(
                "--reps", needValue(argc, argv, i), 1, 1024));
        } else if (arg == "--tick-budget") {
            spec.tick_budget_ms = parseReal(
                "--tick-budget", needValue(argc, argv, i), 0.0, 1e6);
        } else {
            fatal("build: unknown flag '%s'", arg.c_str());
        }
    }
    spec.seeds.clear();
    for (std::size_t s = 0; s < seed_count; ++s)
        spec.seeds.push_back(seed_base + s);

    const CampaignEngine engine(dir);
    engine.build(spec);
    const Manifest manifest = readManifest(dir);
    std::printf("campaign '%s': %zu cells -> %s/manifest.jsonl\n",
                manifest.name.c_str(), manifest.cells.size(),
                dir.c_str());
    return 0;
}

int
cmdRun(int argc, char **argv, const std::string &dir)
{
    CampaignOptions options;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--dir") {
            needValue(argc, argv, i);
        } else if (arg == "--shard") {
            parseShard(needValue(argc, argv, i), options);
        } else if (arg == "--jobs") {
            options.jobs = static_cast<int>(parseInt(
                "--jobs", needValue(argc, argv, i), 1, 1024));
        } else if (arg == "--max-attempts") {
            options.max_attempts = static_cast<int>(parseInt(
                "--max-attempts", needValue(argc, argv, i), 1, 100));
        } else if (arg == "--wall-budget") {
            options.wall_budget_ms = parseReal(
                "--wall-budget", needValue(argc, argv, i), 0.0, 1e9);
        } else if (arg == "--retry-failed") {
            options.retry_failed = true;
        } else {
            fatal("run: unknown flag '%s'", arg.c_str());
        }
    }
    const CampaignEngine engine(dir);
    const CampaignReport report = engine.run(options);
    std::printf("campaign run: shard %d/%d total=%zu owned=%zu "
                "cached=%zu executed=%zu corrupt-rerun=%zu "
                "failures=%zu\n",
                options.shard_index, options.shard_count, report.total,
                report.owned, report.cached_hits, report.executed,
                report.corrupt_rerun, report.failures);
    return report.failures > 0 ? 3 : 0;
}

int
cmdStatus(const std::string &dir)
{
    const CampaignEngine engine(dir);
    const CampaignStatus s = engine.status();
    std::printf("campaign status: total=%zu ok=%zu failed=%zu "
                "corrupt=%zu missing=%zu (%s)\n",
                s.total, s.cached_ok, s.cached_failed, s.corrupt,
                s.missing, s.complete() ? "complete" : "incomplete");
    return s.complete() ? 0 : 2;
}

int
cmdMerge(int argc, char **argv, const std::string &dir)
{
    std::string out_path;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--dir")
            needValue(argc, argv, i);
        else if (arg == "--out")
            out_path = needValue(argc, argv, i);
        else
            fatal("merge: unknown flag '%s'", arg.c_str());
    }
    if (out_path.empty())
        fatal("merge: --out is required");
    const CampaignEngine engine(dir);
    const std::size_t rows = engine.merge(out_path);
    std::printf("campaign merge: %zu cells -> %s\n", rows,
                out_path.c_str());
    return 0;
}

std::string
findDir(int argc, char **argv)
{
    for (int i = 2; i < argc; ++i)
        if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc)
            return argv[i + 1];
    fatal("--dir is required");
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        if (argc < 2 || std::strcmp(argv[1], "--help") == 0
            || std::strcmp(argv[1], "-h") == 0) {
            usage();
            return argc < 2 ? 1 : 0;
        }
        const std::string verb = argv[1];
        const std::string dir = findDir(argc, argv);
        if (verb == "build")
            return cmdBuild(argc, argv, dir);
        if (verb == "run" || verb == "resume")
            return cmdRun(argc, argv, dir);
        if (verb == "status")
            return cmdStatus(dir);
        if (verb == "merge")
            return cmdMerge(argc, argv, dir);
        fatal("unknown verb '%s' (build run resume status merge)",
              verb.c_str());
    } catch (const hiss::FatalError &e) {
        std::fprintf(stderr, "hiss_campaign: %s\n", e.what());
        return 1;
    }
}
