/**
 * @file
 * hiss_fuzz — deterministic randomized stress harness.
 *
 * Generates seed-reproducible random configurations (workload mix,
 * mitigation combination, QoS policy and threshold, coalescing
 * window, accelerator count, duration) and runs short simulations
 * with the runtime invariant layer (src/check) armed. Every case is
 * derived purely from its seed through hiss::Rng, so a failing seed
 * reproduces bit-identically on any machine and any --jobs count.
 *
 * On failure the harness prints the exact seed, the generated
 * configuration, and a copy-pasteable hiss_sim command line, then
 * greedily shrinks the configuration (dropping mitigations, QoS, and
 * workloads one at a time) to the simplest variant that still fails.
 *
 * The fixed 64-seed corpus (seeds 1..64) runs in ctest under the
 * "fuzz" label:
 *   hiss_fuzz --seeds 64 --check
 *
 * Examples:
 *   hiss_fuzz --seeds 64 --check          # the ctest corpus
 *   hiss_fuzz --seed-base 1337 --seeds 1  # re-run one seed
 *   hiss_fuzz --seeds 256 --jobs 8 --no-shrink
 */

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/hiss.h"
#include "sim/logging.h"
#include "sim/random.h"

namespace {

using namespace hiss;

struct Options
{
    int seeds = 64;
    std::uint64_t seed_base = 1;
    int jobs = 0; // 0 = all hardware threads.
    bool check = true;
    bool faults = false;
    bool shrink = true;
    bool verbose = false;
};

/**
 * One generated case. The heap-allocated SystemConfig base must stay
 * at a stable address: ExperimentCell copies the ExperimentConfig,
 * which carries only a pointer to it.
 */
struct FuzzCase
{
    std::uint64_t seed = 0;
    std::string cpu_app;
    std::string gpu_app;
    MeasureMode mode = MeasureMode::GpuOnly;
    ExperimentConfig config;
    SystemConfig base;
};

void
usage()
{
    std::printf(
        "hiss_fuzz — deterministic randomized stress harness\n"
        "\n"
        "  --seeds N       number of seeds to run (default 64)\n"
        "  --seed-base B   first seed (default 1); seeds B..B+N-1\n"
        "  --jobs N        parallel workers (default: all threads)\n"
        "  --check         arm the invariant layer (default)\n"
        "  --no-check      run without invariant sweeps\n"
        "  --faults        derive a fault-injection schedule per seed\n"
        "  --no-shrink     skip config shrinking on failure\n"
        "  --verbose       keep simulator warnings on stderr\n"
        "\n"
        "A failing seed prints a copy-pasteable hiss_sim repro and a\n"
        "one-seed hiss_fuzz rerun command, then greedily shrinks the\n"
        "configuration to the simplest variant that still fails.\n");
}

long long
parseInt(const char *flag, const char *text, long long lo, long long hi)
{
    errno = 0;
    char *end = nullptr;
    const long long value = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE)
        fatal("%s: '%s' is not an integer", flag, text);
    if (value < lo || value > hi)
        fatal("%s: %lld is out of range [%lld, %lld]", flag, value, lo,
              hi);
    return value;
}

std::uint64_t
parseSeed(const char *flag, const char *text)
{
    errno = 0;
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE
        || text[0] == '-')
        fatal("%s: '%s' is not a valid seed", flag, text);
    return value;
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    auto need_value = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            fatal("%s needs a value", argv[i]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage();
            return false;
        } else if (arg == "--seeds") {
            opt.seeds = static_cast<int>(
                parseInt("--seeds", need_value(i), 1, 1'000'000));
        } else if (arg == "--seed-base") {
            opt.seed_base = parseSeed("--seed-base", need_value(i));
        } else if (arg == "--jobs") {
            opt.jobs = static_cast<int>(
                parseInt("--jobs", need_value(i), 0, 4096));
        } else if (arg == "--check") {
            opt.check = true;
        } else if (arg == "--no-check") {
            opt.check = false;
        } else if (arg == "--faults") {
            opt.faults = true;
        } else if (arg == "--shrink") {
            opt.shrink = true;
        } else if (arg == "--no-shrink") {
            opt.shrink = false;
        } else if (arg == "--verbose") {
            opt.verbose = true;
        } else {
            fatal("unknown argument: %s (try --help)", arg.c_str());
        }
    }
    if (opt.seed_base > UINT64_MAX
            - (static_cast<std::uint64_t>(opt.seeds) - 1))
        fatal("--seed-base %llu with --seeds %d overflows the seed "
              "space",
              static_cast<unsigned long long>(opt.seed_base),
              opt.seeds);
    return true;
}

/**
 * Derive a whole case from one seed. All draws come from a single
 * named stream in a fixed order, so a seed maps to exactly one
 * configuration forever (changing the draw order below invalidates
 * the corpus — bump the stream name if that is ever necessary).
 */
std::unique_ptr<FuzzCase>
makeCase(std::uint64_t seed, bool check, bool faults)
{
    const std::vector<std::string> &cpus = parsec::benchmarkNames();
    const std::vector<std::string> &gpus = gpu_suite::workloadNames();
    Rng rng(seed, "hiss_fuzz.config");

    auto fc = std::make_unique<FuzzCase>();
    fc->seed = seed;

    // Workload mix: mostly CPU+GPU pairs (the paper's shape), with
    // CPU-only and GPU-only corners.
    const bool with_cpu = rng.withProbability(0.7);
    if (with_cpu) {
        fc->cpu_app = cpus[rng.uniformInt(0, cpus.size() - 1)];
        if (rng.withProbability(0.12)) {
            fc->mode = MeasureMode::CpuOnly;
        } else {
            fc->gpu_app = gpus[rng.uniformInt(0, gpus.size() - 1)];
            fc->mode = MeasureMode::CpuPrimary;
        }
    } else {
        fc->gpu_app = gpus[rng.uniformInt(0, gpus.size() - 1)];
        fc->mode = MeasureMode::GpuOnly;
    }

    fc->base.num_cores = static_cast<int>(rng.uniformInt(2, 6));

    // Mitigation combination (all eight reachable, like Figs. 7-9).
    MitigationConfig &m = fc->config.mitigation;
    m.steer_to_single_core = rng.withProbability(0.4);
    m.steer_core = static_cast<int>(
        rng.uniformInt(0, static_cast<std::uint64_t>(
                              fc->base.num_cores - 1)));
    m.interrupt_coalescing = rng.withProbability(0.4);
    m.coalesce_window = usToTicks(rng.uniformReal(2.0, 26.0));
    m.monolithic_bottom_half = rng.withProbability(0.3);
    fc->base.iommu.adaptive_coalescing =
        m.interrupt_coalescing && rng.withProbability(0.25);

    if (rng.withProbability(0.5)) {
        fc->config.qos_threshold = rng.uniformReal(0.005, 0.3);
        fc->base.kernel.qos.policy = rng.withProbability(0.5)
            ? ThrottlePolicy::TokenBucket
            : ThrottlePolicy::ExponentialBackoff;
    }

    fc->config.gpu_demand_paging = !rng.withProbability(0.1);
    fc->config.extra_accelerators = fc->gpu_app.empty()
        ? 0 : static_cast<int>(rng.uniformInt(0, 2));
    fc->config.rate_window = msToTicks(rng.uniformReal(2.0, 8.0));
    fc->config.max_sim_time = msToTicks(rng.uniformReal(10.0, 30.0));
    fc->base.check_period =
        usToTicks(static_cast<double>(rng.uniformInt(20, 200)));

    // Fault schedules come from their own stream so enabling --faults
    // never disturbs the frozen "hiss_fuzz.config" draw order above.
    if (faults) {
        Rng frng(seed, "hiss_fuzz.faults");
        FaultPlan &f = fc->config.fault;
        if (frng.withProbability(0.6))
            f.ppr_queue_capacity =
                static_cast<std::size_t>(frng.uniformInt(4, 48));
        // Always at least 1% MSI loss: the corpus must prove recovery
        // under sustained PPR-chain faults, not just survive zeros.
        f.irq_drop_prob = frng.uniformReal(0.01, 0.10);
        if (frng.withProbability(0.5))
            f.irq_dup_prob = frng.uniformReal(0.005, 0.05);
        if (frng.withProbability(0.5))
            f.irq_delay_prob = frng.uniformReal(0.01, 0.10);
        if (frng.withProbability(0.4))
            f.ipi_delay_prob = frng.uniformReal(0.005, 0.05);
        if (frng.withProbability(0.4))
            f.kworker_stall_prob = frng.uniformReal(0.005, 0.05);
        if (frng.withProbability(0.5))
            f.signal_loss_prob = frng.uniformReal(0.01, 0.10);
        f.request_timeout = usToTicks(frng.uniformReal(200.0, 2000.0));
        f.max_retries = static_cast<int>(frng.uniformInt(2, 10));
    }

    fc->config.seed = seed;
    fc->config.check_invariants = check;
    fc->config.base_system = &fc->base;
    return fc;
}

std::string
describeCase(const FuzzCase &fc)
{
    char buf[384];
    std::snprintf(
        buf, sizeof buf,
        "cpu='%s' gpu='%s' cores=%d mitigation=%s%s qos=%g policy=%s "
        "demand_paging=%d accels=%d window=%.1fms cap=%.1fms "
        "faults=[%s]",
        fc.cpu_app.c_str(), fc.gpu_app.c_str(), fc.base.num_cores,
        fc.config.mitigation.label().c_str(),
        fc.base.iommu.adaptive_coalescing ? "+adaptive" : "",
        fc.config.qos_threshold,
        fc.base.kernel.qos.policy == ThrottlePolicy::TokenBucket
            ? "bucket" : "backoff",
        fc.config.gpu_demand_paging ? 1 : 0,
        1 + fc.config.extra_accelerators,
        ticksToMs(fc.config.rate_window),
        ticksToMs(fc.config.max_sim_time),
        fc.config.fault.label().c_str());
    return buf;
}

/** Copy-pasteable hiss_sim command line reproducing the case. */
std::string
reproCommand(const FuzzCase &fc)
{
    char buf[768];
    int n = std::snprintf(
        buf, sizeof buf, "hiss_sim --check --seed %llu --cores %d",
        static_cast<unsigned long long>(fc.seed), fc.base.num_cores);
    auto append = [&](const char *fmt, auto... args) {
        if (n >= 0 && n < static_cast<int>(sizeof buf))
            n += std::snprintf(buf + n, sizeof buf - n, fmt, args...);
    };
    if (!fc.cpu_app.empty())
        append(" --cpu %s", fc.cpu_app.c_str());
    if (!fc.gpu_app.empty())
        append(" --gpu %s --loop-gpu", fc.gpu_app.c_str());
    if (!fc.config.gpu_demand_paging)
        append(" --no-demand-paging");
    if (fc.config.extra_accelerators > 0)
        append(" --accelerators %d", 1 + fc.config.extra_accelerators);
    const MitigationConfig &m = fc.config.mitigation;
    if (m.steer_to_single_core)
        append(" --steer %d", m.steer_core);
    if (m.interrupt_coalescing)
        append(" --coalesce %.3f", ticksToUs(m.coalesce_window));
    if (fc.base.iommu.adaptive_coalescing)
        append(" --adaptive-coalesce");
    if (m.monolithic_bottom_half)
        append(" --monolithic");
    if (fc.config.qos_threshold > 0.0)
        append(" --qos %g --qos-policy %s", fc.config.qos_threshold,
               fc.base.kernel.qos.policy == ThrottlePolicy::TokenBucket
                   ? "bucket" : "backoff");
    const FaultPlan &f = fc.config.fault;
    if (f.enabled()) {
        if (f.ppr_queue_capacity > 0)
            append(" --fault-ppr-capacity %llu",
                   static_cast<unsigned long long>(
                       f.ppr_queue_capacity));
        if (f.irq_drop_prob > 0.0)
            append(" --fault-drop-irq %.3f", f.irq_drop_prob);
        if (f.irq_dup_prob > 0.0)
            append(" --fault-dup-irq %.3f", f.irq_dup_prob);
        if (f.irq_delay_prob > 0.0)
            append(" --fault-delay-irq %.3f", f.irq_delay_prob);
        if (f.ipi_delay_prob > 0.0)
            append(" --fault-delay-ipi %.3f", f.ipi_delay_prob);
        if (f.kworker_stall_prob > 0.0)
            append(" --fault-stall-kworker %.3f",
                   f.kworker_stall_prob);
        if (f.signal_loss_prob > 0.0)
            append(" --fault-lose-signal %.3f", f.signal_loss_prob);
        append(" --fault-timeout %.0f --fault-retries %d",
               ticksToUs(f.request_timeout), f.max_retries);
    }
    append(" --duration %.3f", ticksToMs(fc.config.max_sim_time));
    return buf;
}

/** @return true when the case still fails (throws) when run serially. */
bool
caseFails(const FuzzCase &fc)
{
    try {
        ExperimentConfig config = fc.config;
        config.base_system = &fc.base;
        ExperimentRunner::run(fc.cpu_app, fc.gpu_app, config, fc.mode);
        return false;
    } catch (const std::exception &) {
        return true;
    }
}

/**
 * Greedy shrink: try dropping one configuration feature at a time,
 * keeping each simplification only if the case still fails. The
 * result is a local minimum — usually a one-mitigation repro.
 */
FuzzCase
shrinkCase(const FuzzCase &failing)
{
    struct Step
    {
        const char *what;
        bool (*apply)(FuzzCase &);
    };
    static const Step steps[] = {
        {"disable fault injection",
         [](FuzzCase &fc) {
             if (!fc.config.fault.enabled())
                 return false;
             fc.config.fault = FaultPlan{};
             return true;
         }},
        {"drop extra accelerators",
         [](FuzzCase &fc) {
             if (fc.config.extra_accelerators == 0)
                 return false;
             fc.config.extra_accelerators = 0;
             return true;
         }},
        {"disable adaptive coalescing",
         [](FuzzCase &fc) {
             if (!fc.base.iommu.adaptive_coalescing)
                 return false;
             fc.base.iommu.adaptive_coalescing = false;
             return true;
         }},
        {"disable monolithic bottom half",
         [](FuzzCase &fc) {
             if (!fc.config.mitigation.monolithic_bottom_half)
                 return false;
             fc.config.mitigation.monolithic_bottom_half = false;
             return true;
         }},
        {"disable coalescing",
         [](FuzzCase &fc) {
             if (!fc.config.mitigation.interrupt_coalescing)
                 return false;
             fc.config.mitigation.interrupt_coalescing = false;
             return true;
         }},
        {"disable steering",
         [](FuzzCase &fc) {
             if (!fc.config.mitigation.steer_to_single_core)
                 return false;
             fc.config.mitigation.steer_to_single_core = false;
             return true;
         }},
        {"disable QoS",
         [](FuzzCase &fc) {
             if (fc.config.qos_threshold <= 0.0)
                 return false;
             fc.config.qos_threshold = 0.0;
             return true;
         }},
        {"drop the CPU app",
         [](FuzzCase &fc) {
             if (fc.cpu_app.empty() || fc.gpu_app.empty())
                 return false;
             fc.cpu_app.clear();
             fc.mode = MeasureMode::GpuOnly;
             return true;
         }},
        {"reset core count to 4",
         [](FuzzCase &fc) {
             if (fc.base.num_cores == 4)
                 return false;
             fc.base.num_cores = 4;
             if (fc.config.mitigation.steer_core >= 4)
                 fc.config.mitigation.steer_core = 0;
             return true;
         }},
    };

    FuzzCase best = failing;
    for (const Step &step : steps) {
        FuzzCase candidate = best;
        if (!step.apply(candidate))
            continue;
        if (caseFails(candidate)) {
            std::printf("  shrink: %s — still fails\n", step.what);
            best = std::move(candidate);
        }
    }
    return best;
}

int
run(const Options &opt)
{
    if (!opt.verbose)
        logging::setLevel(logging::Level::Silent);

    std::vector<std::unique_ptr<FuzzCase>> cases;
    std::vector<ExperimentCell> cells;
    cases.reserve(static_cast<std::size_t>(opt.seeds));
    cells.reserve(static_cast<std::size_t>(opt.seeds));
    for (int i = 0; i < opt.seeds; ++i) {
        cases.push_back(
            makeCase(opt.seed_base + static_cast<std::uint64_t>(i),
                     opt.check, opt.faults));
        const FuzzCase &fc = *cases.back();
        cells.push_back({fc.cpu_app, fc.gpu_app, fc.config, fc.mode, 1});
    }

    const ExperimentBatch batch(opt.jobs);
    const std::vector<CellOutcome> outcomes = batch.runCatching(cells);

    int failures = 0;
    for (int i = 0; i < opt.seeds; ++i) {
        if (outcomes[static_cast<std::size_t>(i)].ok)
            continue;
        ++failures;
        const FuzzCase &fc = *cases[static_cast<std::size_t>(i)];
        std::printf("FAIL seed %llu: %s\n"
                    "  config: %s\n"
                    "  repro:  %s\n"
                    "  rerun:  hiss_fuzz --seed-base %llu --seeds 1\n",
                    static_cast<unsigned long long>(fc.seed),
                    outcomes[static_cast<std::size_t>(i)].error.c_str(),
                    describeCase(fc).c_str(), reproCommand(fc).c_str(),
                    static_cast<unsigned long long>(fc.seed));
        if (opt.shrink) {
            const FuzzCase shrunk = shrinkCase(fc);
            std::printf("  shrunk: %s\n"
                        "  repro:  %s\n",
                        describeCase(shrunk).c_str(),
                        reproCommand(shrunk).c_str());
        }
    }

    std::printf("fuzz: %d seed%s (%llu..%llu), %d job%s, checks %s, "
                "faults %s: %d failure%s\n",
                opt.seeds, opt.seeds == 1 ? "" : "s",
                static_cast<unsigned long long>(opt.seed_base),
                static_cast<unsigned long long>(
                    opt.seed_base
                    + static_cast<std::uint64_t>(opt.seeds) - 1),
                batch.jobs(), batch.jobs() == 1 ? "" : "s",
                opt.check ? "armed" : "off",
                opt.faults ? "on" : "off", failures,
                failures == 1 ? "" : "s");
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    try {
        if (!parseArgs(argc, argv, opt))
            return 0;
        return run(opt);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "hiss_fuzz: %s\n", e.what());
        return 1;
    }
}
