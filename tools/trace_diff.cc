/**
 * @file
 * trace_diff — first-divergence finder for line-oriented dumps.
 *
 * Compares two text files (stats dumps, CSV exports, JSONL event
 * traces) line by line and reports the FIRST divergent line with
 * context, instead of diff's full hunk soup. Built for snapshot
 * debugging: run a cold simulation and a restored one with --stats
 * or --trace, then point trace_diff at the outputs — the first
 * divergent line names the subsystem that failed to round-trip.
 *
 * Usage:
 *   trace_diff A B [--ignore SUBSTR]... [--context N]
 *
 * Lines containing any --ignore substring are skipped on both sides
 * (wall-clock "host:" lines, "snapshot:" progress lines). Exit 0
 * when equivalent, 1 on divergence, 2 on usage/IO errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <string>
#include <vector>

namespace {

struct Options
{
    std::string path_a;
    std::string path_b;
    std::vector<std::string> ignore;
    int context = 3;
};

void
usage()
{
    std::fprintf(
        stderr,
        "usage: trace_diff A B [--ignore SUBSTR]... [--context N]\n"
        "  Report the first line where A and B diverge.\n"
        "  --ignore SUBSTR  skip lines containing SUBSTR (repeatable)\n"
        "  --context N      lines of shared context to print "
        "(default 3)\n");
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            return false;
        } else if (arg == "--ignore") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "trace_diff: --ignore needs a value\n");
                return false;
            }
            opt.ignore.push_back(argv[++i]);
        } else if (arg == "--context") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "trace_diff: --context needs a value\n");
                return false;
            }
            opt.context = std::atoi(argv[++i]);
            if (opt.context < 0)
                opt.context = 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "trace_diff: unknown flag %s\n",
                         arg.c_str());
            return false;
        } else {
            positional.push_back(arg);
        }
    }
    if (positional.size() != 2) {
        std::fprintf(stderr, "trace_diff: need exactly two files\n");
        return false;
    }
    opt.path_a = positional[0];
    opt.path_b = positional[1];
    return true;
}

/** One side of the comparison: a filtered line stream. */
class LineStream
{
  public:
    LineStream(const std::string &path,
               const std::vector<std::string> &ignore)
        : in_(path), ignore_(ignore)
    {
    }

    bool ok() const { return in_.is_open(); }

    /** Next non-ignored line; false at EOF. Tracks raw line number. */
    bool
    next(std::string &line, std::size_t &lineno)
    {
        while (std::getline(in_, line)) {
            ++raw_lineno_;
            bool skip = false;
            for (const std::string &sub : ignore_)
                skip = skip || line.find(sub) != std::string::npos;
            if (skip)
                continue;
            lineno = raw_lineno_;
            return true;
        }
        return false;
    }

  private:
    std::ifstream in_;
    const std::vector<std::string> &ignore_;
    std::size_t raw_lineno_ = 0;
};

int
run(const Options &opt)
{
    LineStream a(opt.path_a, opt.ignore);
    LineStream b(opt.path_b, opt.ignore);
    if (!a.ok() || !b.ok()) {
        std::fprintf(stderr, "trace_diff: cannot open %s\n",
                     !a.ok() ? opt.path_a.c_str()
                             : opt.path_b.c_str());
        return 2;
    }

    std::deque<std::string> context;
    std::size_t compared = 0;
    for (;;) {
        std::string line_a;
        std::string line_b;
        std::size_t no_a = 0;
        std::size_t no_b = 0;
        const bool has_a = a.next(line_a, no_a);
        const bool has_b = b.next(line_b, no_b);
        if (!has_a && !has_b) {
            std::printf("trace_diff: identical (%zu lines compared)\n",
                        compared);
            return 0;
        }
        if (has_a != has_b) {
            std::printf("trace_diff: %s ends early after %zu shared "
                        "lines\n",
                        (has_a ? opt.path_b : opt.path_a).c_str(),
                        compared);
            if (has_a)
                std::printf("  only in %s:%zu: %s\n",
                            opt.path_a.c_str(), no_a, line_a.c_str());
            else
                std::printf("  only in %s:%zu: %s\n",
                            opt.path_b.c_str(), no_b, line_b.c_str());
            return 1;
        }
        if (line_a != line_b) {
            std::printf("trace_diff: first divergence after %zu "
                        "shared lines\n",
                        compared);
            for (const std::string &c : context)
                std::printf("    %s\n", c.c_str());
            std::printf("  - %s:%zu: %s\n", opt.path_a.c_str(), no_a,
                        line_a.c_str());
            std::printf("  + %s:%zu: %s\n", opt.path_b.c_str(), no_b,
                        line_b.c_str());
            return 1;
        }
        ++compared;
        context.push_back(line_a);
        while (context.size() > static_cast<std::size_t>(opt.context))
            context.pop_front();
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt)) {
        usage();
        return 2;
    }
    return run(opt);
}
