#include "statecheck.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

namespace hiss::statecheck {
namespace {

using hiss::lint::Finding;
using hiss::lint::Severity;

/** Snapshot-infrastructure classes: never the *target* of an
 *  implementation, even when they appear in its signature. */
bool
isInfraClass(const std::string &short_name)
{
    return short_name == "Writer" || short_name == "Reader"
        || short_name == "Hash64" || short_name == "Access"
        || short_name == "Token" || short_name == "Tag";
}

std::string
shortNameOf(const std::string &qualified)
{
    const std::size_t pos = qualified.rfind("::");
    return pos == std::string::npos ? qualified
                                    : qualified.substr(pos + 2);
}

bool
startsWith(const std::string &s, const char *prefix)
{
    return s.rfind(prefix, 0) == 0;
}

/**
 * Classify a definition as a save/restore/hash implementation.
 * Specific family names match by prefix (so the SsrRequest-style free
 * functions snapSaveRequest/snapRestoreRequest count); the bare
 * generic names only count when the signature carries the matching
 * snapshot-infrastructure type, so an unrelated save() is not
 * mistaken for a serializer.
 */
bool
classifyImpl(const FunctionDef &fn, Mode &mode)
{
    if (startsWith(fn.name, "snapSave") || startsWith(fn.name, "saveState")
        || startsWith(fn.name, "saveSnapshot")) {
        mode = Mode::Save;
        return true;
    }
    if (startsWith(fn.name, "snapRestore")
        || startsWith(fn.name, "restoreState")
        || startsWith(fn.name, "restoreSnapshot")) {
        mode = Mode::Restore;
        return true;
    }
    if (startsWith(fn.name, "stateHash")) {
        mode = Mode::Hash;
        return true;
    }
    auto hasParam = [&fn](const char *type) {
        return std::find(fn.param_idents.begin(), fn.param_idents.end(),
                         type)
            != fn.param_idents.end();
    };
    if (fn.name == "save" && hasParam("Writer")) {
        mode = Mode::Save;
        return true;
    }
    if (fn.name == "restore" && hasParam("Reader")) {
        mode = Mode::Restore;
        return true;
    }
    if (fn.name == "hash" && hasParam("Hash64")) {
        mode = Mode::Hash;
        return true;
    }
    return false;
}

bool
appliesTo(const ExemptMarker &marker, Mode mode)
{
    if (marker.modes.empty())
        return true;
    return std::find(marker.modes.begin(), marker.modes.end(), mode)
        != marker.modes.end();
}

Finding
makeFinding(const std::string &path, int line, int col,
            const char *rule, Severity severity, std::string message,
            std::string hint)
{
    Finding finding;
    finding.path = path;
    finding.line = line;
    finding.col = col;
    finding.rule = rule;
    finding.severity = severity;
    finding.message = std::move(message);
    finding.hint = std::move(hint);
    return finding;
}

/** Tracks which exempt markers earned their keep this run. */
struct ExemptUsage
{
    // Pure lookup: stale markers are reported by walking the parsed
    // classes in file order, never by iterating this table.
    std::unordered_map<const ExemptMarker *, bool> used;

    void
    seen(const ExemptMarker &marker)
    {
        used.emplace(&marker, false);
    }

    void
    use(const ExemptMarker &marker)
    {
        used[&marker] = true;
    }

    bool
    wasUsed(const ExemptMarker &marker) const
    {
        const auto it = used.find(&marker);
        return it != used.end() && it->second;
    }
};

} // namespace

const char *
ruleForMode(Mode mode)
{
    switch (mode) {
      case Mode::Save: return kRuleSave;
      case Mode::Restore: return kRuleRestore;
      case Mode::Hash: return kRuleHash;
      case Mode::CellKey: return kRuleCellKey;
    }
    return kRuleSave;
}

void
Index::addFile(ParsedFile file)
{
    files_.push_back(std::move(file));
    built_ = false;
}

int
Index::findClass(const std::string &name) const
{
    if (name.empty())
        return -1;
    const std::string want = shortNameOf(name);
    for (std::size_t i = 0; i < classes_.size(); ++i) {
        if (classes_[i].decl->name == name
            || classes_[i].short_name == want)
            return static_cast<int>(i);
    }
    return -1;
}

void
Index::build()
{
    classes_.clear();
    subjects_.clear();
    for (const ParsedFile &file : files_)
        for (const ClassDecl &decl : file.classes)
            classes_.push_back({&file, &decl, shortNameOf(decl.name)});

    // Resolve every implementation to the class whose state it
    // serializes: the member qualifier / enclosing class when that is
    // a real (non-infrastructure) class, else the first known class
    // in the parameter list, else the return type (the by-value
    // snapRestoreRequest pattern).
    std::map<int, Subject> by_class;
    for (const ParsedFile &file : files_) {
        for (const FunctionDef &fn : file.functions) {
            if (!fn.has_body)
                continue;
            Mode mode;
            if (!classifyImpl(fn, mode))
                continue;
            auto lookup = [this](const std::string &name) {
                if (isInfraClass(shortNameOf(name)))
                    return -1;
                return findClass(name);
            };
            int target = lookup(fn.qualifier);
            if (target < 0)
                target = lookup(fn.enclosing);
            if (target < 0) {
                for (const std::string &ident : fn.param_idents) {
                    target = lookup(ident);
                    if (target >= 0)
                        break;
                }
            }
            if (target < 0)
                target = lookup(fn.return_type);
            if (target < 0)
                continue;
            Subject &subject = by_class[target];
            if (subject.decl == nullptr) {
                const ClassRef &ref = classes_[target];
                subject.name = ref.decl->name;
                subject.short_name = ref.short_name;
                subject.file = ref.file->path;
                subject.line = ref.decl->line;
                subject.decl = ref.decl;
            }
            subject.impls[static_cast<int>(mode)].push_back(&fn);
        }
    }
    for (auto &[idx, subject] : by_class)
        subjects_.push_back(std::move(subject));
    std::sort(subjects_.begin(), subjects_.end(),
              [](const Subject &a, const Subject &b) {
                  return a.name < b.name;
              });
    built_ = true;
}

std::vector<Finding>
Index::analyze(const Options &opts) const
{
    std::vector<Finding> out;
    ExemptUsage usage;

    auto matchesFilter = [&opts](const Subject &subject) {
        return opts.only_class.empty()
            || opts.only_class == subject.name
            || opts.only_class == subject.short_name;
    };
    auto classMatchesFilter = [&opts](const ClassRef &ref) {
        return opts.only_class.empty()
            || opts.only_class == ref.decl->name
            || opts.only_class == ref.short_name;
    };

    // Every marker is registered up front so the final audit can tell
    // "never consulted" from "consulted but unnecessary".
    for (const ClassRef &ref : classes_)
        for (const ExemptMarker &marker : ref.decl->exempts)
            usage.seen(marker);

    static const Mode kOps[] = {Mode::Save, Mode::Restore, Mode::Hash};
    static const char *kOpVerb[] = {"save", "restore", "hash"};

    for (const Subject &subject : subjects_) {
        const ClassDecl &decl = *subject.decl;
        auto findExempt = [&decl](const std::string &target,
                                  Mode mode) -> const ExemptMarker * {
            for (const ExemptMarker &marker : decl.exempts) {
                if (marker.malformed || !marker.justified)
                    continue;
                if (marker.target == target && appliesTo(marker, mode))
                    return &marker;
            }
            return nullptr;
        };

        for (const Mode mode : kOps) {
            const int m = static_cast<int>(mode);
            const ExemptMarker *class_exempt =
                findExempt(subject.short_name, mode);
            if (subject.impls[m].empty()) {
                if (class_exempt != nullptr) {
                    usage.use(*class_exempt);
                } else if (matchesFilter(subject)) {
                    out.push_back(makeFinding(
                        subject.file, subject.line, 1, kRuleStructure,
                        Severity::Warning,
                        "class " + subject.short_name
                            + " is snapshot-capable but has no "
                            + kOpVerb[m] + " implementation",
                        std::string("implement it, or exempt the class "
                                    "with HISS_STATE_EXEMPT(")
                            + subject.short_name + ", " + modeName(mode)
                            + "): why"));
                }
                continue;
            }
            for (const FieldDecl &field : decl.fields) {
                if (field.is_reference)
                    continue; // wiring: references cannot be reseated
                bool covered = false;
                for (const FunctionDef *fn : subject.impls[m])
                    if (fn->mentions(field.name)) {
                        covered = true;
                        break;
                    }
                if (covered)
                    continue;
                const ExemptMarker *exempt =
                    class_exempt != nullptr
                        ? class_exempt
                        : findExempt(field.name, mode);
                if (exempt != nullptr) {
                    usage.use(*exempt);
                    continue;
                }
                if (!matchesFilter(subject))
                    continue;
                out.push_back(makeFinding(
                    subject.file, field.line, field.col,
                    ruleForMode(mode), Severity::Error,
                    "field '" + field.name + "' of "
                        + subject.short_name
                        + " is not referenced by any " + kOpVerb[m]
                        + " implementation",
                    "serialize it, or add HISS_STATE_EXEMPT("
                        + field.name + ", " + modeName(mode)
                        + "): why it is not snapshot state"));
            }
        }
    }

    // --- Cell-key coverage -------------------------------------------
    // Union the identifiers mentioned by canonicalCellText and its
    // same-file helpers, then require every field reachable by value
    // from its root parameter to appear there.
    const ParsedFile *ck_file = nullptr;
    const FunctionDef *ck_fn = nullptr;
    for (const ParsedFile &file : files_) {
        for (const FunctionDef &fn : file.functions) {
            if (fn.has_body && fn.name == "canonicalCellText") {
                ck_file = &file;
                ck_fn = &fn;
                break;
            }
        }
        if (ck_fn != nullptr)
            break;
    }
    if (ck_fn != nullptr) {
        std::set<std::string> ck_idents;
        for (const FunctionDef &fn : ck_file->functions)
            if (fn.has_body)
                ck_idents.insert(fn.body_idents.begin(),
                                 fn.body_idents.end());
        int root = -1;
        for (const std::string &ident : ck_fn->param_idents) {
            if (!isInfraClass(shortNameOf(ident)))
                root = findClass(ident);
            if (root >= 0)
                break;
        }
        if (root < 0)
            root = findClass("ExperimentCell");

        std::set<int> visited;
        // Plain recursion via explicit stack: by-value struct fields
        // pull their own type into the walk.
        std::vector<int> stack;
        if (root >= 0)
            stack.push_back(root);
        while (!stack.empty()) {
            const int idx = stack.back();
            stack.pop_back();
            if (!visited.insert(idx).second)
                continue;
            const ClassRef &ref = classes_[idx];
            auto findCkExempt =
                [&ref](const std::string &target) -> const ExemptMarker * {
                for (const ExemptMarker &marker : ref.decl->exempts) {
                    if (marker.malformed || !marker.justified)
                        continue;
                    if ((marker.target == target
                         || marker.target == ref.short_name)
                        && appliesTo(marker, Mode::CellKey))
                        return &marker;
                }
                return nullptr;
            };
            for (const FieldDecl &field : ref.decl->fields) {
                if (field.is_reference)
                    continue;
                if (!field.is_pointer) {
                    const int sub = findClass(field.type_name);
                    if (sub >= 0 && !isInfraClass(field.type_name))
                        stack.push_back(sub);
                }
                if (ck_idents.count(field.name) > 0)
                    continue;
                const ExemptMarker *exempt = findCkExempt(field.name);
                if (exempt != nullptr) {
                    usage.use(*exempt);
                    continue;
                }
                if (classMatchesFilter(ref)) {
                    out.push_back(makeFinding(
                        ref.file->path, field.line, field.col,
                        kRuleCellKey, Severity::Error,
                        "field '" + field.name + "' of "
                            + ref.short_name
                            + " does not appear in canonicalCellText —"
                              " two cells differing only in it share a"
                              " cache key",
                        "fold it into the canonical text (bump the key"
                        " format version), or add HISS_STATE_EXEMPT("
                            + field.name
                            + ", cellkey): why it cannot change"
                              " results"));
                }
            }
        }
    }

    // --- Exempt-marker audit -----------------------------------------
    for (const ClassRef &ref : classes_) {
        if (!classMatchesFilter(ref))
            continue;
        for (const ExemptMarker &marker : ref.decl->exempts) {
            if (marker.malformed) {
                out.push_back(makeFinding(
                    ref.file->path, marker.line, 1, kRuleExempt,
                    Severity::Error,
                    "malformed marker '" + marker.raw + "'",
                    "write HISS_STATE_EXEMPT(field[, save restore hash"
                    " cellkey]): justification"));
                continue;
            }
            if (!marker.justified) {
                out.push_back(makeFinding(
                    ref.file->path, marker.line, 1, kRuleExempt,
                    Severity::Error,
                    "HISS_STATE_EXEMPT(" + marker.target
                        + ") without a justification",
                    "append \"): why this field is not covered\""));
                continue;
            }
            bool known = marker.target == ref.short_name;
            for (const FieldDecl &field : ref.decl->fields)
                if (field.name == marker.target)
                    known = true;
            if (!known) {
                out.push_back(makeFinding(
                    ref.file->path, marker.line, 1, kRuleExempt,
                    Severity::Error,
                    "HISS_STATE_EXEMPT names unknown field '"
                        + marker.target + "' in " + ref.short_name,
                    "the field was renamed or removed; update or"
                    " delete the marker"));
                continue;
            }
            if (opts.only_class.empty() && !usage.wasUsed(marker)) {
                out.push_back(makeFinding(
                    ref.file->path, marker.line, 1, kRuleExempt,
                    Severity::Warning,
                    "stale HISS_STATE_EXEMPT(" + marker.target
                        + "): every exempted mode now covers the"
                          " field (or never checks this class)",
                    "delete the marker — exemptions must not outlive"
                    " their reason"));
            }
        }
    }
    for (const ParsedFile &file : files_) {
        for (const ExemptMarker &marker : file.orphan_exempts) {
            if (!opts.only_class.empty())
                continue;
            out.push_back(makeFinding(
                file.path, marker.line, 1, kRuleExempt, Severity::Error,
                "HISS_STATE_EXEMPT outside any class body: '"
                    + marker.raw + "'",
                "place the marker inside the class whose field it"
                " exempts"));
        }
    }

    std::stable_sort(out.begin(), out.end(),
                     [](const Finding &a, const Finding &b) {
                         if (a.path != b.path)
                             return a.path < b.path;
                         return a.line < b.line;
                     });
    return out;
}

} // namespace hiss::statecheck
