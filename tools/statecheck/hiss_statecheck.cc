/**
 * @file
 * hiss_statecheck driver.
 *
 * Parses every C++ file under the given paths (default: src under
 * --root) into one cross-TU index, then reports any snapshot-capable
 * class whose fields are not covered by all of save/restore/hash,
 * any cell-key-reachable field missing from canonicalCellText, and
 * any HISS_STATE_EXEMPT marker that is malformed, unjustified,
 * unknown, or stale.
 *
 * Exit status: 0 clean, 1 error findings, 2 usage/IO failure.
 *
 *   hiss_statecheck [--root DIR] [--format=human|gcc]
 *                   [--class NAME] [--list] [path...]
 *
 * --class NAME restricts the report to one class (handy while fixing
 * a single serializer); --list prints every snapshot-capable class
 * with its implementation inventory instead of analyzing.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "statecheck.h"

namespace fs = std::filesystem;
using hiss::lint::Finding;
using hiss::lint::Severity;
using hiss::statecheck::Index;
using hiss::statecheck::Options;
using hiss::statecheck::Subject;

namespace {

bool
parsableExtension(const fs::path &path)
{
    const std::string ext = path.extension().string();
    return ext == ".h" || ext == ".cc" || ext == ".cpp"
        || ext == ".hpp";
}

bool
skippedDir(const std::string &name)
{
    // Build trees and the intentionally-violating fixture corpora.
    return name == "lint_fixtures" || name == "statecheck_fixtures"
        || name.rfind("build", 0) == 0 || name == ".git";
}

std::vector<std::string>
collectFiles(const fs::path &root, const std::vector<std::string> &paths,
             bool &io_error)
{
    std::vector<std::string> files;
    for (const std::string &rel : paths) {
        const fs::path base = root / rel;
        std::error_code ec;
        if (fs::is_regular_file(base, ec)) {
            files.push_back(rel);
            continue;
        }
        if (!fs::is_directory(base, ec)) {
            std::cerr << "hiss_statecheck: no such file or directory: "
                      << base.string() << "\n";
            io_error = true;
            continue;
        }
        fs::recursive_directory_iterator it(
            base, fs::directory_options::skip_permission_denied, ec);
        for (const auto end = fs::recursive_directory_iterator();
             it != end; it.increment(ec)) {
            if (ec)
                break;
            if (it->is_directory()
                && skippedDir(it->path().filename().string())) {
                it.disable_recursion_pending();
                continue;
            }
            if (it->is_regular_file() && parsableExtension(it->path()))
                files.push_back(
                    fs::relative(it->path(), root).generic_string());
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());
    return files;
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path root = ".";
    std::vector<std::string> paths;
    bool list = false;
    Options opts;
    hiss::lint::OutputFormat fmt = hiss::lint::OutputFormat::Human;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--class" && i + 1 < argc) {
            opts.only_class = argv[++i];
        } else if (arg.rfind("--format=", 0) == 0) {
            if (!hiss::lint::parseOutputFormat(arg.substr(9), fmt)) {
                std::cerr << "hiss_statecheck: unknown format '"
                          << arg.substr(9) << "' (human|gcc)\n";
                return 2;
            }
        } else if (arg == "--list") {
            list = true;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: hiss_statecheck [--root DIR]"
                         " [--format=human|gcc] [--class NAME]"
                         " [--list] [path...]\n";
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "hiss_statecheck: unknown option '" << arg
                      << "'\n";
            return 2;
        } else {
            paths.push_back(arg);
        }
    }

    if (paths.empty())
        paths = {"src"};

    bool io_error = false;
    const std::vector<std::string> files =
        collectFiles(root, paths, io_error);
    if (files.empty()) {
        std::cerr << "hiss_statecheck: nothing to analyze under "
                  << root.string() << "\n";
        return 2;
    }

    Index index;
    for (const std::string &rel : files) {
        std::ifstream in(root / rel, std::ios::binary);
        if (!in) {
            std::cerr << "hiss_statecheck: cannot read " << rel
                      << "\n";
            io_error = true;
            continue;
        }
        std::ostringstream contents;
        contents << in.rdbuf();
        index.addFile(
            hiss::statecheck::parseFile(rel, contents.str()));
    }
    index.build();

    if (list) {
        for (const Subject &subject : index.subjects()) {
            std::cout << subject.name << " (" << subject.file << ":"
                      << subject.line << ")";
            static const char *kOps[] = {"save", "restore", "hash"};
            for (int m = 0; m < 3; ++m)
                std::cout << " " << kOps[m] << "="
                          << subject.impls[m].size();
            std::cout << " fields="
                      << subject.decl->fields.size() << "\n";
        }
        std::cout << "hiss_statecheck: " << index.subjects().size()
                  << " snapshot-capable classes across "
                  << index.numClasses() << " classes in "
                  << index.numFiles() << " files\n";
        return io_error ? 2 : 0;
    }

    std::size_t errors = 0, warnings = 0;
    for (const Finding &finding : index.analyze(opts)) {
        std::cout << hiss::lint::format(finding, fmt) << "\n";
        if (finding.severity == Severity::Error)
            ++errors;
        else
            ++warnings;
    }

    if (errors == 0 && warnings == 0)
        std::cout << "hiss_statecheck: clean ("
                  << index.subjects().size() << " classes, "
                  << index.numFiles() << " files)\n";
    else
        std::cout << "hiss_statecheck: " << errors << " error(s), "
                  << warnings << " warning(s)\n";
    if (io_error)
        return 2;
    return errors > 0 ? 1 : 0;
}
