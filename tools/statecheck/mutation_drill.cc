/**
 * @file
 * Runtime mutation drill for the state-coverage contract.
 *
 * hiss_statecheck proves statically that every field is referenced
 * by the save/restore/hash implementations; this drill closes the
 * loop dynamically: mutating covered state after a snapshot must
 * move stateHash, and restoring the snapshot must move it back.
 * Runs under `ctest -L lint` next to the analyzer itself.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "core/hiss.h"
#include "mem/branch_predictor.h"
#include "mem/cache.h"
#include "sim/ticks.h"

namespace hiss {
namespace {

TEST(MutationDrill, CacheCounterFlipMovesTheHash)
{
    // A fresh cache has all-zero tags and lru stamps, so the entire
    // divergence here comes from the flush counter — exactly the
    // counter coverage the analyzer demanded of Cache::stateHash.
    Cache cache(CacheParams{1024, 2, 64});
    const std::uint64_t before = cache.stateHash();
    cache.flush();
    EXPECT_NE(cache.stateHash(), before);
}

TEST(MutationDrill, CacheAccessCountersSplitEqualTagState)
{
    // Two caches with identical tag/lru contents but different
    // hit/miss histories must not hash equal.
    Cache a(CacheParams{1024, 2, 64});
    Cache b(CacheParams{1024, 2, 64});
    a.access(0x1000);
    b.access(0x1000);
    EXPECT_EQ(a.stateHash(), b.stateHash());
    b.access(0x1000); // Hit: tags unchanged, counters move.
    b.access(0x1000);
    EXPECT_NE(a.stateHash(), b.stateHash());
}

TEST(MutationDrill, BranchPredictorLookupMovesTheHash)
{
    BranchPredictor bp(BranchPredictorParams{});
    const std::uint64_t before = bp.stateHash();
    bp.predictAndUpdate(0x4000, true);
    EXPECT_NE(bp.stateHash(), before);
}

TEST(MutationDrill, PostSnapshotMutationDivergesAndRestoreRecovers)
{
    SystemConfig config;
    config.seed = 99;
    // Snapshots refuse an armed invariant monitor (see
    // tests/test_snapshot.cc); stand down the HISS_CHECK=ON default.
    config.check_invariants = false;

    auto build = [&config]() {
        auto sys = std::make_unique<HeteroSystem>(config);
        CpuAppParams app = parsec::params("x264");
        app.iterations = 4;
        sys->addCpuApp(app).start();
        return sys;
    };

    auto sys = build();
    sys->runUntil(msToTicks(1));
    const std::string blob = sys->snapshotBytes();
    const std::uint64_t at_cut = sys->stateHash();

    // Flip covered state: a little more simulation moves the event
    // clock, the RNG cursors and the per-core counters, all of which
    // the hash must observe.
    sys->runUntil(msToTicks(1) + usToTicks(50));
    EXPECT_NE(sys->stateHash(), at_cut)
        << "post-snapshot mutation did not move stateHash";

    // And the snapshot must put every one of those fields back.
    auto twin = build();
    twin->restoreSnapshotBytes(blob);
    EXPECT_EQ(twin->stateHash(), at_cut)
        << "restore did not reproduce the saved state";
}

} // namespace
} // namespace hiss
