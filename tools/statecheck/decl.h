/**
 * @file
 * Lightweight C++ declaration parser for hiss_statecheck.
 *
 * Built on the hiss_lint lexer, this extracts exactly what the
 * state-coverage analyzer needs from a translation unit and nothing
 * more: class/struct member fields (with enough type shape to tell a
 * reference from a value), function definitions with their parameter
 * types and the set of identifiers their bodies mention, and inline
 * `HISS_STATE_EXEMPT(field): justification` markers.
 *
 * Like the lint lexer it is deliberately not a C++ front end. Member
 * declarations are recognized by token shape (a statement in a class
 * body that ends in ';' without a top-level parameter list is a
 * field), which is exact for this tree's style and degrades softly —
 * never fatally — on exotic constructs.
 */

#ifndef HISS_STATECHECK_DECL_H_
#define HISS_STATECHECK_DECL_H_

#include <string>
#include <vector>

#include "lexer.h"

namespace hiss::statecheck {

/** One instance member variable of a class/struct. */
struct FieldDecl
{
    std::string name;
    /** Last type identifier before the declarator ("" when unclear),
     *  e.g. "MitigationConfig" for `MitigationConfig mitigation;` or
     *  "unique_ptr" for `std::unique_ptr<Kernel> kernel_;`. */
    std::string type_name;
    /** Deepest identifier in the type, template args included — for
     *  `std::unique_ptr<Kernel>` this is "Kernel". Used by the
     *  cell-key walk to recurse through by-value struct fields. */
    std::string inner_type_name;
    int line = 0;
    int col = 1;
    bool is_reference = false; // `T &x;` — rebinding is impossible
    bool is_pointer = false;   // `T *x;`
};

/** Coverage dimensions a field can be checked (and exempted) in. */
enum class Mode { Save, Restore, Hash, CellKey };

const char *modeName(Mode mode);

/** One parsed HISS_STATE_EXEMPT marker. */
struct ExemptMarker
{
    /** Field name, or the class's short name for class-level
     *  exemptions (e.g. exempting a whole class from Hash). */
    std::string target;
    /** Exempted modes; empty = every mode. */
    std::vector<Mode> modes;
    int line = 0;
    bool justified = false; // "): why" present and non-empty
    bool malformed = false; // unparseable marker or unknown mode
    std::string raw;        // first marker line, for diagnostics
};

/** A class/struct definition with its instance fields. */
struct ClassDecl
{
    /** "::"-qualified for nesting, e.g. "CpuApp::ThreadModel". */
    std::string name;
    int line = 0;
    int end_line = 0; // line of the closing brace
    std::vector<FieldDecl> fields;
    std::vector<ExemptMarker> exempts;
};

/** A function definition (with body) or bodyless declaration. */
struct FunctionDef
{
    std::string name;      // unqualified, e.g. "snapSave"
    std::string qualifier; // "SignalQueue" for SignalQueue::snapSave
    std::string enclosing; // class whose body holds an inline def
    std::string return_type; // last identifier of the return tokens
    /** Every identifier appearing in the parameter list (type names
     *  and parameter names alike; matched against known classes). */
    std::vector<std::string> param_idents;
    /** Sorted, de-duplicated identifiers mentioned anywhere in the
     *  body (constructor init lists included). Empty for bodyless
     *  declarations. */
    std::vector<std::string> body_idents;
    bool has_body = false;
    int line = 0;

    bool mentions(const std::string &ident) const;
};

struct ParsedFile
{
    std::string path;
    std::vector<ClassDecl> classes;
    std::vector<FunctionDef> functions;
    /** Markers found outside any class body (always a finding). */
    std::vector<ExemptMarker> orphan_exempts;
};

/** Parse @p source. Never throws; unparseable regions are skipped. */
ParsedFile parseFile(const std::string &path, const std::string &source);

} // namespace hiss::statecheck

#endif // HISS_STATECHECK_DECL_H_
