/**
 * @file
 * hiss_statecheck: cross-TU state-coverage analysis.
 *
 * The Index ingests parsed files (headers and sources together, so an
 * implementation in a .cc is matched against fields declared in the
 * .h), discovers every snapshot-capable class — one targeted by at
 * least one save/restore/hash implementation — and proves that every
 * instance field is referenced by all three, that every field
 * reachable by value from the experiment cell appears in the
 * canonical cell-key text, and that every HISS_STATE_EXEMPT marker is
 * well-formed, justified, and still load-bearing.
 *
 * Implementations are recognized across this tree's three naming
 * families (snapSave/snapRestore/stateHash members, the
 * saveState/restoreState and saveSnapshot/restoreSnapshot variants,
 * and snap::Access-style static save/restore/hash overloads, which
 * must take a snap::Writer / snap::Reader / Hash64 to count).
 * Findings reuse the hiss_lint Finding type and formats.
 */

#ifndef HISS_STATECHECK_STATECHECK_H_
#define HISS_STATECHECK_STATECHECK_H_

#include <array>
#include <string>
#include <vector>

#include "decl.h"
#include "lint.h"

namespace hiss::statecheck {

/** Rule names, one per coverage dimension plus the marker audits. */
inline constexpr const char *kRuleSave = "state-save";
inline constexpr const char *kRuleRestore = "state-restore";
inline constexpr const char *kRuleHash = "state-hash";
inline constexpr const char *kRuleCellKey = "cell-key";
/** Malformed / unjustified / unknown-target / stale exempt markers. */
inline constexpr const char *kRuleExempt = "state-exempt";
/** Snapshot-capable class missing one of the three operations. */
inline constexpr const char *kRuleStructure = "state-structure";

const char *ruleForMode(Mode mode);

/** A snapshot-capable class and the implementations that target it. */
struct Subject
{
    std::string name;       // qualified, e.g. "CpuApp"
    std::string short_name; // last "::" component
    std::string file;       // file that defines the class
    int line = 0;
    const ClassDecl *decl = nullptr;
    /** Indexed by Mode Save/Restore/Hash. */
    std::array<std::vector<const FunctionDef *>, 3> impls;
};

struct Options
{
    /** Restrict findings to one class (short or qualified name).
     *  Exempt staleness is not audited in this mode — only the full
     *  tree knows whether a marker is load-bearing. */
    std::string only_class;
};

class Index
{
  public:
    /** Ingest a parsed file. Call build() once after the last add. */
    void addFile(ParsedFile file);

    /** Resolve implementations to classes; required before use. */
    void build();

    const std::vector<Subject> &subjects() const { return subjects_; }
    std::size_t numFiles() const { return files_.size(); }
    std::size_t numClasses() const { return classes_.size(); }

    std::vector<hiss::lint::Finding>
    analyze(const Options &opts = {}) const;

  private:
    struct ClassRef
    {
        const ParsedFile *file = nullptr;
        const ClassDecl *decl = nullptr;
        std::string short_name;
    };

    int findClass(const std::string &name) const;

    std::vector<ParsedFile> files_;
    std::vector<ClassRef> classes_; // built from files_, stable order
    std::vector<Subject> subjects_;
    bool built_ = false;
};

} // namespace hiss::statecheck

#endif // HISS_STATECHECK_STATECHECK_H_
