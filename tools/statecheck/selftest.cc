/**
 * @file
 * Fixture-driven self-test for hiss_statecheck.
 *
 * The clean fixture corpus must produce zero findings; the drill
 * corpus seeds one example of every defect class — a field added
 * after the serializers were written (flagged in save, restore AND
 * hash), a cell-key-reachable field missing from canonicalCellText,
 * a class without a hash implementation, and every exempt-marker
 * failure (unknown target, stale, unjustified, orphan). Inline
 * sources cover the declaration parser's edges directly.
 */

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "statecheck.h"

namespace {

using hiss::lint::Finding;
using hiss::lint::Severity;
using hiss::statecheck::ClassDecl;
using hiss::statecheck::FieldDecl;
using hiss::statecheck::FunctionDef;
using hiss::statecheck::Index;
using hiss::statecheck::Options;
using hiss::statecheck::ParsedFile;
using hiss::statecheck::parseFile;
using hiss::statecheck::Subject;

std::string
readFixture(const std::string &name)
{
    const std::string path =
        std::string(HISS_STATECHECK_FIXTURE_DIR) + "/" + name;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot read fixture " << path;
    std::ostringstream contents;
    contents << in.rdbuf();
    return contents.str();
}

/** Build one cross-TU index out of a fixture subdirectory. */
Index
buildIndex(const std::string &subdir)
{
    Index index;
    for (const char *name :
         {"widget.h", "widget.cc", "cell.h", "cell.cc"})
        index.addFile(parseFile(subdir + "/" + name,
                                readFixture(subdir + "/" + name)));
    index.build();
    return index;
}

std::size_t
count(const std::vector<Finding> &findings, const std::string &rule,
      const std::string &needle = "")
{
    return static_cast<std::size_t>(std::count_if(
        findings.begin(), findings.end(), [&](const Finding &f) {
            return f.rule == rule
                && (needle.empty()
                    || f.message.find(needle) != std::string::npos);
        }));
}

std::string
render(const std::vector<Finding> &findings)
{
    std::string out;
    for (const Finding &f : findings)
        out += hiss::lint::format(f) + "\n";
    return out;
}

const ClassDecl *
findClass(const ParsedFile &file, const std::string &name)
{
    for (const ClassDecl &cls : file.classes)
        if (cls.name == name)
            return &cls;
    return nullptr;
}

const FieldDecl *
findField(const ClassDecl &cls, const std::string &name)
{
    for (const FieldDecl &field : cls.fields)
        if (field.name == name)
            return &field;
    return nullptr;
}

// ---------------------------------------------------------------
// Declaration parser
// ---------------------------------------------------------------

TEST(DeclParser, ExtractsFieldsWithTypeShape)
{
    const ParsedFile file = parseFile("t.h", R"(
        namespace hiss {
        class Widget {
          public:
            Widget() = default;
            void poke(int amount);
          private:
            std::uint64_t count_ = 0;
            std::vector<std::unique_ptr<Gpu>> gpus_;
            MitigationConfig mitigation;
            Kernel *kernel_ = nullptr;
            Clock &clock_;
            std::function<void(CpuCore &)> callback_;
            Tick window_[4] = {};
            int lo_ = 0, hi_ = 0;
        };
        } // namespace hiss
    )");
    const ClassDecl *cls = findClass(file, "Widget");
    ASSERT_NE(cls, nullptr);
    EXPECT_EQ(cls->fields.size(), 9u);

    const FieldDecl *count = findField(*cls, "count_");
    ASSERT_NE(count, nullptr);
    EXPECT_EQ(count->type_name, "uint64_t");

    const FieldDecl *gpus = findField(*cls, "gpus_");
    ASSERT_NE(gpus, nullptr);
    EXPECT_EQ(gpus->type_name, "vector");
    EXPECT_EQ(gpus->inner_type_name, "Gpu");

    const FieldDecl *mitigation = findField(*cls, "mitigation");
    ASSERT_NE(mitigation, nullptr);
    EXPECT_EQ(mitigation->type_name, "MitigationConfig");

    const FieldDecl *kernel = findField(*cls, "kernel_");
    ASSERT_NE(kernel, nullptr);
    EXPECT_TRUE(kernel->is_pointer);

    const FieldDecl *clock = findField(*cls, "clock_");
    ASSERT_NE(clock, nullptr);
    EXPECT_TRUE(clock->is_reference);

    // The parenthesized std::function signature must not turn the
    // field into a function declaration.
    EXPECT_NE(findField(*cls, "callback_"), nullptr);
    EXPECT_NE(findField(*cls, "window_"), nullptr);
    // Comma-separated declarators each become a field.
    EXPECT_NE(findField(*cls, "lo_"), nullptr);
    EXPECT_NE(findField(*cls, "hi_"), nullptr);
}

TEST(DeclParser, SkipsNonFieldStatements)
{
    const ParsedFile file = parseFile("t.h", R"(
        class Widget {
            using Callback = std::function<void(int)>;
            typedef int Cost;
            friend struct snap::Access;
            enum class Phase { Idle, Busy };
            static constexpr int kDepth = 4;
            static int live_count;
            bool operator==(const Widget &other) const;
            int real_ = 0;
        };
    )");
    const ClassDecl *cls = findClass(file, "Widget");
    ASSERT_NE(cls, nullptr);
    ASSERT_EQ(cls->fields.size(), 1u);
    EXPECT_EQ(cls->fields[0].name, "real_");
}

TEST(DeclParser, QualifiesNestedClassesAndInitializers)
{
    const ParsedFile file = parseFile("t.h", R"(
        class Outer {
            struct Inner {
                int depth = usToTicks(13);
            };
            Inner inner_;
        };
    )");
    const ClassDecl *inner = findClass(file, "Outer::Inner");
    ASSERT_NE(inner, nullptr);
    // The call in the initializer must not classify depth as a
    // function declaration.
    EXPECT_NE(findField(*inner, "depth"), nullptr);
    const ClassDecl *outer = findClass(file, "Outer");
    ASSERT_NE(outer, nullptr);
    const FieldDecl *member = findField(*outer, "inner_");
    ASSERT_NE(member, nullptr);
    EXPECT_EQ(member->type_name, "Inner");
}

TEST(DeclParser, RecordsFunctionBodiesAcrossStyles)
{
    const ParsedFile file = parseFile("t.cc", R"(
        void
        SignalQueue::snapSave(snap::Writer &out) const
        {
            out.u64(next_id_);
        }

        std::uint64_t
        SignalQueue::stateHash() const
        {
            snap::Hash64 h;
            h.mix(next_id_);
            return h.value();
        }

        struct Access {
            static void save(Writer &out, const Rng &rng)
            {
                out.u64(rng.state_);
            }
        };

        SsrRequest
        snapRestoreRequest(Reader &in)
        {
            SsrRequest req;
            req.id = in.u64();
            return req;
        }
    )");
    ASSERT_EQ(file.functions.size(), 4u);

    const FunctionDef &save = file.functions[0];
    EXPECT_EQ(save.name, "snapSave");
    EXPECT_EQ(save.qualifier, "SignalQueue");
    EXPECT_TRUE(save.mentions("next_id_"));
    EXPECT_FALSE(save.mentions("rng"));

    const FunctionDef &hash = file.functions[1];
    EXPECT_EQ(hash.name, "stateHash");
    EXPECT_EQ(hash.return_type, "uint64_t");

    const FunctionDef &access_save = file.functions[2];
    EXPECT_EQ(access_save.name, "save");
    EXPECT_EQ(access_save.enclosing, "Access");
    EXPECT_TRUE(std::find(access_save.param_idents.begin(),
                          access_save.param_idents.end(), "Writer")
                != access_save.param_idents.end());
    EXPECT_TRUE(access_save.mentions("state_"));

    const FunctionDef &restore = file.functions[3];
    EXPECT_EQ(restore.name, "snapRestoreRequest");
    EXPECT_EQ(restore.return_type, "SsrRequest");
}

TEST(DeclParser, ConstructorInitListsCountAsBodyMentions)
{
    const ParsedFile file = parseFile("t.cc", R"(
        Widget::Widget(int depth)
            : depth_(depth), budget_(depth * 2)
        {
        }
    )");
    ASSERT_EQ(file.functions.size(), 1u);
    EXPECT_TRUE(file.functions[0].mentions("depth_"));
    EXPECT_TRUE(file.functions[0].mentions("budget_"));
}

TEST(DeclParser, ParsesExemptMarkers)
{
    const ParsedFile file = parseFile("t.h", R"(
        class Widget {
            // HISS_STATE_EXEMPT(scratch_): rebuilt lazily
            int scratch_ = 0;
            // HISS_STATE_EXEMPT(cache_, hash cellkey): derived
            int cache_ = 0;
            // HISS_STATE_EXEMPT(bad_, teleport): unknown mode
            int bad_ = 0;
            // HISS_STATE_EXEMPT(naked_, save)
            int naked_ = 0;
        };
        // HISS_STATE_EXEMPT(stray_, save): outside any class
    )");
    const ClassDecl *cls = findClass(file, "Widget");
    ASSERT_NE(cls, nullptr);
    ASSERT_EQ(cls->exempts.size(), 4u);

    EXPECT_EQ(cls->exempts[0].target, "scratch_");
    EXPECT_TRUE(cls->exempts[0].modes.empty()); // all modes
    EXPECT_TRUE(cls->exempts[0].justified);

    EXPECT_EQ(cls->exempts[1].target, "cache_");
    ASSERT_EQ(cls->exempts[1].modes.size(), 2u);
    EXPECT_EQ(cls->exempts[1].modes[0],
              hiss::statecheck::Mode::Hash);
    EXPECT_EQ(cls->exempts[1].modes[1],
              hiss::statecheck::Mode::CellKey);

    EXPECT_TRUE(cls->exempts[2].malformed); // unknown mode word
    EXPECT_FALSE(cls->exempts[3].justified);

    ASSERT_EQ(file.orphan_exempts.size(), 1u);
    EXPECT_EQ(file.orphan_exempts[0].target, "stray_");
}

// ---------------------------------------------------------------
// Cross-TU analysis: fixtures
// ---------------------------------------------------------------

TEST(Statecheck, CleanFixtureIsClean)
{
    const Index index = buildIndex("clean");
    const std::vector<Finding> findings = index.analyze();
    EXPECT_TRUE(findings.empty()) << render(findings);

    ASSERT_EQ(index.subjects().size(), 1u);
    const Subject &widget = index.subjects()[0];
    EXPECT_EQ(widget.name, "Widget");
    EXPECT_EQ(widget.impls[0].size(), 1u);
    EXPECT_EQ(widget.impls[1].size(), 1u);
    EXPECT_EQ(widget.impls[2].size(), 1u);
}

TEST(Statecheck, DrillFlagsUnserializedFieldInEveryMode)
{
    const std::vector<Finding> findings =
        buildIndex("drill").analyze();
    // The freshly added epoch_ must be caught by all three coverage
    // dimensions — this is the "field added but not serialized"
    // regression the analyzer exists for.
    EXPECT_EQ(count(findings, "state-save", "epoch_"), 1u)
        << render(findings);
    EXPECT_EQ(count(findings, "state-restore", "epoch_"), 1u);
    EXPECT_EQ(count(findings, "state-hash", "epoch_"), 1u);
    // Covered fields stay silent.
    EXPECT_EQ(count(findings, "state-save", "count_"), 0u);
    EXPECT_EQ(count(findings, "state-hash", "credit_"), 0u);
}

TEST(Statecheck, DrillFlagsCellKeyGap)
{
    const std::vector<Finding> findings =
        buildIndex("drill").analyze();
    EXPECT_EQ(count(findings, "cell-key", "fuel"), 1u)
        << render(findings);
    EXPECT_EQ(count(findings, "cell-key", "seed"), 0u);
    EXPECT_EQ(count(findings, "cell-key", "window"), 0u);
    // The app field lives on Cell, reached transitively.
    EXPECT_EQ(count(findings, "cell-key", "'app'"), 0u);
}

TEST(Statecheck, DrillFlagsMissingHashImplementation)
{
    const std::vector<Finding> findings =
        buildIndex("drill").analyze();
    EXPECT_EQ(count(findings, "state-structure", "Gauge"), 1u)
        << render(findings);
    // Gauge's covered field must not produce per-mode noise for the
    // modes it does implement.
    EXPECT_EQ(count(findings, "state-save", "level_"), 0u);
    EXPECT_EQ(count(findings, "state-restore", "level_"), 0u);
}

TEST(Statecheck, DrillFlagsEveryExemptDefect)
{
    const std::vector<Finding> findings =
        buildIndex("drill").analyze();
    EXPECT_EQ(count(findings, "state-exempt", "ghost_"), 1u)
        << render(findings); // unknown target
    EXPECT_EQ(count(findings, "state-exempt", "without a"), 1u);
    EXPECT_EQ(count(findings, "state-exempt", "stale"), 1u);
    EXPECT_EQ(count(findings, "state-exempt", "outside any class"),
              1u);
}

TEST(Statecheck, OnlyClassFilterRestrictsFindings)
{
    Options opts;
    opts.only_class = "Gauge";
    const std::vector<Finding> findings =
        buildIndex("drill").analyze(opts);
    EXPECT_EQ(count(findings, "state-structure", "Gauge"), 1u)
        << render(findings);
    EXPECT_EQ(count(findings, "state-save", "epoch_"), 0u);
    EXPECT_EQ(count(findings, "cell-key", "fuel"), 0u);
}

TEST(Statecheck, ExemptSuppressesAndEarnsItsKeep)
{
    // The clean fixture's scratch_ exempt suppresses all three mode
    // findings; were it stale, CleanFixtureIsClean would fail on the
    // stale warning. Flip the drill: removing a justified exempt from
    // a covered field must warn.
    Index index;
    index.addFile(parseFile("w.h", R"(
        class Widget {
            std::uint64_t count_ = 0;
            // HISS_STATE_EXEMPT(count_, hash): pretends count_ is
            // not hashed, but it is
        };
    )"));
    index.addFile(parseFile("w.cc", R"(
        void Widget::snapSave(snap::Writer &out) const { out.u64(count_); }
        void Widget::snapRestore(snap::Reader &in) { count_ = in.u64(); }
        std::uint64_t Widget::stateHash() const { return count_; }
    )"));
    index.build();
    const std::vector<Finding> findings = index.analyze();
    EXPECT_EQ(count(findings, "state-exempt", "stale"), 1u)
        << render(findings);
}

TEST(Statecheck, AccessOverloadsTargetTheSerializedClass)
{
    // The snap::Access pattern: static save/restore/hash overloads
    // whose target is the first non-infrastructure class parameter.
    Index index;
    index.addFile(parseFile("rng.h", R"(
        class Rng {
            std::uint64_t state_ = 1;
            std::uint64_t seq_ = 0;
        };
    )"));
    index.addFile(parseFile("access.h", R"(
        struct Access {
            static void save(Writer &out, const Rng &rng)
            {
                out.u64(rng.state_);
            }
            static void restore(Reader &in, Rng &rng)
            {
                rng.state_ = in.u64();
            }
            static void hash(Hash64 &h, const Rng &rng)
            {
                h.mix(rng.state_);
            }
        };
    )"));
    index.build();
    ASSERT_EQ(index.subjects().size(), 1u);
    EXPECT_EQ(index.subjects()[0].name, "Rng");

    // seq_ is touched by nothing: three findings, one per mode.
    const std::vector<Finding> findings = index.analyze();
    EXPECT_EQ(count(findings, "state-save", "seq_"), 1u)
        << render(findings);
    EXPECT_EQ(count(findings, "state-restore", "seq_"), 1u);
    EXPECT_EQ(count(findings, "state-hash", "seq_"), 1u);
}

TEST(Statecheck, GenericNamesRequireSnapshotSignature)
{
    // An unrelated save() must not make its class snapshot-capable.
    Index index;
    index.addFile(parseFile("doc.h", R"(
        class Document {
            std::string text_;
        };
    )"));
    index.addFile(parseFile("doc.cc", R"(
        void Document::save(std::ostream &out) const { out << text_; }
    )"));
    index.build();
    EXPECT_TRUE(index.subjects().empty());
    EXPECT_TRUE(index.analyze().empty());
}

} // namespace
