#include "decl.h"

#include <algorithm>
#include <cctype>

namespace hiss::statecheck {
namespace {

using hiss::lint::Comment;
using hiss::lint::LexResult;
using hiss::lint::TokKind;
using hiss::lint::Token;

bool
isIdent(const Token &t, const char *text)
{
    return t.kind == TokKind::Identifier && t.text == text;
}

bool
isPunct(const Token &t, const char *text)
{
    return t.kind == TokKind::Punct && t.text == text;
}

/** Keywords that can precede a declarator without naming its type. */
bool
isTypeQualifierWord(const std::string &s)
{
    static const char *kWords[] = {
        "const",    "volatile", "mutable",  "typename", "struct",
        "class",    "enum",     "union",    "unsigned", "signed",
        "long",     "short",    "static",   "constexpr", "inline",
        "explicit", "virtual",  "register", "thread_local",
    };
    for (const char *w : kWords)
        if (s == w)
            return true;
    return false;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/**
 * One statement's worth of tokens with per-token top-levelness (not
 * inside any paren/bracket/brace/angle nesting of the statement).
 */
struct Stmt
{
    std::vector<Token> toks;
    std::vector<bool> top;
    /** Index into toks of the first top-level '(' before any
     *  top-level '=', or npos: the parameter list of a function. */
    std::size_t paren_open = npos;
    std::size_t paren_close = npos; // its matching ')'
    std::size_t first_eq = npos;    // first top-level '='
    bool has_operator = false;      // `operator` keyword anywhere
    bool has_static = false;        // top-level `static`

    static constexpr std::size_t npos = ~static_cast<std::size_t>(0);
};

class Parser
{
  public:
    Parser(const LexResult &lex, ParsedFile &out)
        : toks_(lex.tokens), out_(out)
    {
    }

    void
    run()
    {
        parseScope("", nullptr, /*stop_at_close=*/false);
    }

  private:
    const std::vector<Token> &toks_;
    ParsedFile &out_;
    std::size_t i_ = 0;

    const Token &
    cur() const
    {
        return toks_[std::min(i_, toks_.size() - 1)];
    }

    bool atEnd() const { return cur().kind == TokKind::EndOfFile; }

    const Token &
    peek(std::size_t ahead) const
    {
        return toks_[std::min(i_ + ahead, toks_.size() - 1)];
    }

    /** Consume through ';' (or a '}' we must not swallow), skipping
     *  balanced braces so `enum X { a, b };` is one unit. */
    void
    skipToSemi()
    {
        int braces = 0;
        while (!atEnd()) {
            if (isPunct(cur(), "{")) {
                ++braces;
            } else if (isPunct(cur(), "}")) {
                if (braces == 0)
                    return; // enclosing close; leave it
                --braces;
            } else if (braces == 0 && isPunct(cur(), ";")) {
                ++i_;
                return;
            }
            ++i_;
        }
    }

    /** Current token is '<' of a template header; consume through the
     *  matching '>' (parens and brackets inside are skipped whole). */
    void
    skipAngles()
    {
        int depth = 0;
        while (!atEnd()) {
            if (isPunct(cur(), "<")) {
                ++depth;
            } else if (isPunct(cur(), ">")) {
                if (--depth == 0) {
                    ++i_;
                    return;
                }
            } else if (isPunct(cur(), ";") || isPunct(cur(), "{")) {
                return; // malformed; bail before damage spreads
            }
            ++i_;
        }
    }

    /**
     * Parse one scope: the whole file ( @p stop_at_close false) or a
     * brace-delimited region whose '{' has been consumed. @p cls is
     * the class whose body this is (nullptr for namespace scopes).
     * Returns the line of the closing brace (0 at EOF).
     */
    int
    parseScope(const std::string &prefix, ClassDecl *cls,
               bool stop_at_close)
    {
        while (!atEnd()) {
            const Token &t = cur();
            if (isPunct(t, "}")) {
                const int close_line = t.line;
                if (stop_at_close) {
                    ++i_;
                    return close_line;
                }
                ++i_; // stray close at file scope; skip
                continue;
            }
            if (isPunct(t, ";")) {
                ++i_;
                continue;
            }
            if (isIdent(t, "namespace")) {
                ++i_;
                while (!atEnd() && !isPunct(cur(), "{")
                       && !isPunct(cur(), ";"))
                    ++i_;
                if (isPunct(cur(), "{")) {
                    ++i_;
                    parseScope(prefix, nullptr, true);
                } else if (isPunct(cur(), ";")) {
                    ++i_;
                }
                continue;
            }
            if (isIdent(t, "template")) {
                ++i_;
                if (isPunct(cur(), "<"))
                    skipAngles();
                continue; // the templated entity parses as usual
            }
            if (isIdent(t, "using") || isIdent(t, "typedef")
                || isIdent(t, "friend")
                || isIdent(t, "static_assert")) {
                skipToSemi();
                continue;
            }
            if ((isIdent(t, "public") || isIdent(t, "private")
                 || isIdent(t, "protected"))
                && isPunct(peek(1), ":")) {
                i_ += 2;
                continue;
            }
            if (isIdent(t, "enum")) {
                skipToSemi();
                continue;
            }
            if (isIdent(t, "extern") && peek(1).kind == TokKind::String) {
                i_ += 2;
                if (isPunct(cur(), "{")) {
                    ++i_;
                    parseScope(prefix, cls, true);
                }
                continue;
            }
            if (isIdent(t, "class") || isIdent(t, "struct")
                || isIdent(t, "union")) {
                parseClassHead(prefix, cls);
                continue;
            }
            parseStatement(cls);
        }
        return 0;
    }

    /** Current token is class/struct/union. */
    void
    parseClassHead(const std::string &prefix, ClassDecl *outer)
    {
        const int head_line = cur().line;
        ++i_;
        std::string name;
        // Name = last plain identifier before '{', ':' (bases), ';'
        // (forward declaration) or '<' (specialization; skipped).
        while (!atEnd()) {
            const Token &t = cur();
            if (t.kind == TokKind::Identifier && t.text != "final"
                && t.text != "alignas") {
                name = t.text;
                ++i_;
                continue;
            }
            if (isPunct(t, "[")) { // attribute; skip balanced
                int depth = 0;
                while (!atEnd()) {
                    if (isPunct(cur(), "["))
                        ++depth;
                    else if (isPunct(cur(), "]") && --depth == 0) {
                        ++i_;
                        break;
                    }
                    ++i_;
                }
                continue;
            }
            break;
        }
        if (isPunct(cur(), ";")) { // forward declaration
            ++i_;
            return;
        }
        if (isPunct(cur(), "<")) { // specialization; treat as opaque
            skipAngles();
        }
        if (isPunct(cur(), ":")) { // base clause
            while (!atEnd() && !isPunct(cur(), "{")
                   && !isPunct(cur(), ";")) {
                if (isPunct(cur(), "<"))
                    skipAngles();
                else
                    ++i_;
            }
        }
        if (!isPunct(cur(), "{")) {
            // `class X y;`-style use as an elaborated type specifier:
            // fall through to a plain statement parse from here.
            if (!isPunct(cur(), ";"))
                parseStatement(outer);
            return;
        }
        ++i_; // consume '{'
        ClassDecl decl;
        decl.name = prefix.empty() || name.empty()
            ? name
            : prefix + "::" + name;
        if (decl.name.empty())
            decl.name = "(anonymous)";
        decl.line = head_line;
        decl.end_line = parseScope(decl.name, &decl, true);
        out_.classes.push_back(std::move(decl));
        // Trailing declarator: `struct {...} member_;` declares a
        // field of the outer class.
        while (!atEnd() && !isPunct(cur(), ";")
               && !isPunct(cur(), "}")) {
            if (cur().kind == TokKind::Identifier && outer != nullptr) {
                FieldDecl field;
                field.name = cur().text;
                field.type_name = name;
                field.inner_type_name = name;
                field.line = cur().line;
                field.col = cur().col;
                outer->fields.push_back(std::move(field));
            }
            ++i_;
        }
        if (isPunct(cur(), ";"))
            ++i_;
    }

    /** Scan one statement into @p stmt. Returns 'b' when a function
     *  body follows (the '{' is current), 's' on ';', 'x' on bail. */
    char
    scanStatement(Stmt &stmt)
    {
        int paren = 0, bracket = 0, brace = 0, angle = 0;
        while (!atEnd()) {
            const Token &t = cur();
            const bool at_top =
                paren == 0 && bracket == 0 && brace == 0 && angle == 0;
            if (t.kind == TokKind::Punct) {
                const std::string &p = t.text;
                if (p == ";" && at_top) {
                    ++i_;
                    return 's';
                }
                if (p == "}" && brace == 0)
                    return 'x'; // enclosing close; leave it
                if (p == "{" && at_top) {
                    if (stmt.paren_open != Stmt::npos
                        && stmt.first_eq == Stmt::npos)
                        return 'b'; // function body follows
                    // Braced initializer / in-class default member
                    // init: swallow it into the statement.
                    brace = 1;
                    stmt.toks.push_back(t);
                    stmt.top.push_back(false);
                    ++i_;
                    continue;
                }
                if (p == "{")
                    ++brace;
                else if (p == "}")
                    --brace;
                else if (p == "(") {
                    if (at_top && stmt.first_eq == Stmt::npos
                        && stmt.paren_open == Stmt::npos)
                        stmt.paren_open = stmt.toks.size();
                    ++paren;
                } else if (p == ")") {
                    --paren;
                    if (paren == 0 && bracket == 0 && brace == 0
                        && angle == 0
                        && stmt.paren_close == Stmt::npos
                        && stmt.paren_open != Stmt::npos)
                        stmt.paren_close = stmt.toks.size();
                } else if (p == "[")
                    ++bracket;
                else if (p == "]")
                    --bracket;
                else if (p == "=" && at_top
                         && stmt.first_eq == Stmt::npos)
                    stmt.first_eq = stmt.toks.size();
                else if (p == "<" && paren == 0 && brace == 0
                         && stmt.first_eq == Stmt::npos
                         && !stmt.toks.empty()
                         && (stmt.toks.back().kind
                                 == TokKind::Identifier
                             || isPunct(stmt.toks.back(), ">")))
                    ++angle;
                else if (p == ">" && angle > 0 && paren == 0
                         && brace == 0)
                    --angle;
            } else if (t.kind == TokKind::Identifier) {
                if (t.text == "operator")
                    stmt.has_operator = true;
                if (t.text == "static" && at_top)
                    stmt.has_static = true;
            }
            stmt.toks.push_back(t);
            stmt.top.push_back(paren == 0 && bracket == 0 && brace == 0
                               && angle == 0);
            ++i_;
        }
        return 'x';
    }

    void
    parseStatement(ClassDecl *cls)
    {
        Stmt stmt;
        const char end = scanStatement(stmt);
        if (end == 'x') {
            if (atEnd())
                return;
            // Ran into the enclosing '}' mid-statement (macro line or
            // construct we don't model); drop what we scanned.
            return;
        }
        if (end == 'b') {
            recordFunction(stmt, cls, /*with_body=*/true);
            return;
        }
        // ';' terminator: a function declaration (has a parameter
        // list) is skipped; anything else inside a class body is a
        // member-variable declaration.
        if (stmt.paren_open != Stmt::npos || stmt.has_operator)
            return;
        if (cls == nullptr || stmt.has_static || stmt.toks.empty())
            return;
        recordFields(stmt, *cls);
    }

    /** Body follows: current token is '{'. */
    void
    recordFunction(const Stmt &stmt, ClassDecl *cls, bool with_body)
    {
        FunctionDef fn;
        // Declarator name: identifier immediately before the
        // parameter list, with any A::B:: qualification collected.
        std::size_t k = stmt.paren_open;
        if (k == Stmt::npos || k == 0) {
            skipBody();
            return;
        }
        std::size_t name_idx = k - 1;
        if (stmt.toks[name_idx].kind != TokKind::Identifier) {
            skipBody();
            return;
        }
        fn.name = stmt.toks[name_idx].text;
        fn.line = stmt.toks[name_idx].line;
        std::size_t chain_begin = name_idx;
        while (chain_begin >= 2 && isPunct(stmt.toks[chain_begin - 1], "::")
               && stmt.toks[chain_begin - 2].kind == TokKind::Identifier) {
            chain_begin -= 2;
            if (!fn.qualifier.empty())
                fn.qualifier = stmt.toks[chain_begin].text
                    + "::" + fn.qualifier;
            else
                fn.qualifier = stmt.toks[chain_begin].text;
        }
        for (std::size_t j = chain_begin; j-- > 0;) {
            if (stmt.toks[j].kind == TokKind::Identifier) {
                if (!isTypeQualifierWord(stmt.toks[j].text)) {
                    fn.return_type = stmt.toks[j].text;
                    break;
                }
            }
        }
        if (cls != nullptr)
            fn.enclosing = cls->name;
        const std::size_t params_end = stmt.paren_close == Stmt::npos
            ? stmt.toks.size()
            : stmt.paren_close;
        for (std::size_t j = stmt.paren_open + 1; j < params_end; ++j)
            if (stmt.toks[j].kind == TokKind::Identifier)
                fn.param_idents.push_back(stmt.toks[j].text);
        // Tokens between the parameter list and the body (constructor
        // init lists, trailing return types) reference fields too.
        std::vector<std::string> body;
        for (std::size_t j = params_end; j < stmt.toks.size(); ++j)
            if (stmt.toks[j].kind == TokKind::Identifier)
                body.push_back(stmt.toks[j].text);
        if (with_body)
            collectBody(body);
        std::sort(body.begin(), body.end());
        body.erase(std::unique(body.begin(), body.end()), body.end());
        fn.body_idents = std::move(body);
        fn.has_body = with_body;
        out_.functions.push_back(std::move(fn));
    }

    /** Current token is the body's '{'; collect its identifiers. */
    void
    collectBody(std::vector<std::string> &out)
    {
        int depth = 0;
        while (!atEnd()) {
            const Token &t = cur();
            if (isPunct(t, "{")) {
                ++depth;
            } else if (isPunct(t, "}")) {
                if (--depth == 0) {
                    ++i_;
                    return;
                }
            } else if (t.kind == TokKind::Identifier) {
                out.push_back(t.text);
            }
            ++i_;
        }
    }

    void
    skipBody()
    {
        std::vector<std::string> sink;
        collectBody(sink);
    }

    void
    recordFields(const Stmt &stmt, ClassDecl &cls)
    {
        // Split on top-level commas into declarators; the leading
        // type tokens are shared by every declarator.
        std::size_t begin = 0;
        std::vector<std::pair<std::size_t, std::size_t>> parts;
        for (std::size_t j = 0; j <= stmt.toks.size(); ++j) {
            const bool split = j == stmt.toks.size()
                || (stmt.top[j] && isPunct(stmt.toks[j], ","));
            if (!split)
                continue;
            if (j > begin)
                parts.emplace_back(begin, j);
            begin = j + 1;
        }
        for (const auto &[lo, hi] : parts) {
            // Declarator name: the identifier directly before the
            // first top-level '=' / '{' / '[' / ':' (bitfield), else
            // the last top-level identifier of the part.
            std::size_t name_idx = Stmt::npos;
            for (std::size_t j = lo; j < hi; ++j) {
                if (!stmt.top[j])
                    continue;
                const Token &t = stmt.toks[j];
                if (t.kind == TokKind::Punct
                    && (t.text == "=" || t.text == "{" || t.text == "["
                        || t.text == ":")) {
                    break;
                }
                if (t.kind == TokKind::Identifier)
                    name_idx = j;
            }
            if (name_idx == Stmt::npos)
                continue;
            const Token &name_tok = stmt.toks[name_idx];
            if (isTypeQualifierWord(name_tok.text))
                continue;
            FieldDecl field;
            field.name = name_tok.text;
            field.line = name_tok.line;
            field.col = name_tok.col;
            for (std::size_t j = lo; j < name_idx; ++j) {
                if (!stmt.top[j])
                    continue;
                if (isPunct(stmt.toks[j], "&"))
                    field.is_reference = true;
                if (isPunct(stmt.toks[j], "*"))
                    field.is_pointer = true;
            }
            for (std::size_t j = name_idx; j-- > lo;) {
                const Token &t = stmt.toks[j];
                if (t.kind != TokKind::Identifier
                    || isTypeQualifierWord(t.text))
                    continue;
                if (field.inner_type_name.empty())
                    field.inner_type_name = t.text;
                if (stmt.top[j]) {
                    field.type_name = t.text;
                    break;
                }
            }
            // `std` from a partially resolved scope chain is never
            // the interesting type name.
            if (field.type_name == "std")
                field.type_name.clear();
            cls.fields.push_back(std::move(field));
        }
    }
};

/** Parse HISS_STATE_EXEMPT markers out of @p comments. */
void
attachExempts(const std::vector<Comment> &comments, ParsedFile &out)
{
    static const std::string kMarker = "HISS_STATE_EXEMPT";
    for (const Comment &comment : comments) {
        const std::string text = trim(comment.text);
        if (text.rfind(kMarker, 0) != 0)
            continue;
        ExemptMarker marker;
        marker.line = comment.line;
        marker.raw = text.substr(0, text.find('\n'));
        const std::size_t open = text.find('(');
        const std::size_t close = open == std::string::npos
            ? std::string::npos
            : text.find(')', open);
        if (open != kMarker.size() || close == std::string::npos) {
            marker.malformed = true;
        } else {
            // target[, mode mode...]
            std::string inner = text.substr(open + 1, close - open - 1);
            std::vector<std::string> words;
            std::string word;
            for (const char c : inner + ",") {
                if (c == ',' || std::isspace(static_cast<unsigned char>(c))) {
                    if (!word.empty())
                        words.push_back(word);
                    word.clear();
                } else {
                    word += c;
                }
            }
            if (words.empty()) {
                marker.malformed = true;
            } else {
                marker.target = words[0];
                for (std::size_t j = 1; j < words.size(); ++j) {
                    if (words[j] == "save")
                        marker.modes.push_back(Mode::Save);
                    else if (words[j] == "restore")
                        marker.modes.push_back(Mode::Restore);
                    else if (words[j] == "hash")
                        marker.modes.push_back(Mode::Hash);
                    else if (words[j] == "cellkey")
                        marker.modes.push_back(Mode::CellKey);
                    else
                        marker.malformed = true;
                }
            }
            const std::string rest = trim(text.substr(close + 1));
            marker.justified = rest.size() > 1 && rest[0] == ':'
                && !trim(rest.substr(1)).empty();
        }
        // Attach to the innermost class whose body holds the marker.
        ClassDecl *owner = nullptr;
        for (ClassDecl &cls : out.classes) {
            if (comment.line < cls.line || comment.line > cls.end_line)
                continue;
            if (owner == nullptr || cls.line > owner->line)
                owner = &cls;
        }
        if (owner != nullptr)
            owner->exempts.push_back(std::move(marker));
        else
            out.orphan_exempts.push_back(std::move(marker));
    }
}

} // namespace

const char *
modeName(Mode mode)
{
    switch (mode) {
      case Mode::Save: return "save";
      case Mode::Restore: return "restore";
      case Mode::Hash: return "hash";
      case Mode::CellKey: return "cellkey";
    }
    return "?";
}

bool
FunctionDef::mentions(const std::string &ident) const
{
    return std::binary_search(body_idents.begin(), body_idents.end(),
                              ident);
}

ParsedFile
parseFile(const std::string &path, const std::string &source)
{
    ParsedFile out;
    out.path = path;
    const LexResult lex = hiss::lint::lex(source);
    Parser(lex, out).run();
    attachExempts(lex.comments, out);
    return out;
}

} // namespace hiss::statecheck
