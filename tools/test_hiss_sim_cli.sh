#!/usr/bin/env bash
# hiss_sim command-line contract: bad values must die cleanly with a
# "hiss_sim:" diagnostic and exit code 1 (not a crash), --help/--list
# must exit 0, the --seed/--reps overflow guard must hold, and a tiny
# checked run must succeed. Registered in ctest as hiss_sim_cli.
set -u

sim="$1"
failures=0

note() { printf '%s\n' "$*"; }

expect_exit0() {
    desc="$1"; shift
    out=$("$@" 2>&1); code=$?
    if [ "$code" -eq 0 ]; then
        note "ok: $desc"
    else
        note "FAIL: $desc (exit $code): $out"
        failures=$((failures + 1))
    fi
}

# Exit code must be exactly 1: the FatalError path. Anything >= 126
# would mean the parser crashed instead of diagnosing.
expect_clean_error() {
    desc="$1"; shift
    out=$("$@" 2>&1); code=$?
    if [ "$code" -eq 1 ] && printf '%s' "$out" | grep -q "hiss_sim:"; then
        note "ok: $desc"
    else
        note "FAIL: $desc (exit $code): $out"
        failures=$((failures + 1))
    fi
}

expect_exit0 "--help exits 0" "$sim" --help
expect_exit0 "--list exits 0" "$sim" --list
expect_exit0 "--describe exits 0" "$sim" --describe
expect_exit0 "tiny checked run" \
    "$sim" --gpu ubench --duration 0.2 --check
expect_exit0 "tiny reps run" \
    "$sim" --gpu ubench --duration 0.2 --reps 2 --jobs 2 --check

expect_clean_error "no workload" "$sim"
expect_clean_error "unknown argument" "$sim" --frobnicate
expect_clean_error "unknown CPU app" "$sim" --cpu nosuchapp
expect_clean_error "non-numeric --reps" "$sim" --cpu x264 --reps abc
expect_clean_error "float --reps" "$sim" --cpu x264 --reps 1e3
expect_clean_error "zero --reps" "$sim" --cpu x264 --reps 0
expect_clean_error "negative --jobs" "$sim" --cpu x264 --jobs -2
expect_clean_error "zero --cores" "$sim" --cpu x264 --cores 0
expect_clean_error "out-of-range --qos" "$sim" --gpu ubench --qos 2
expect_clean_error "zero --qos" "$sim" --gpu ubench --qos 0
expect_clean_error "non-numeric --seed" "$sim" --gpu ubench --seed banana
expect_clean_error "negative --seed" "$sim" --gpu ubench --seed -7
expect_clean_error "non-numeric --duration" "$sim" --gpu ubench --duration x
expect_clean_error "zero --accelerators" "$sim" --gpu ubench --accelerators 0
expect_clean_error "--steer core out of range" "$sim" --gpu ubench --steer 7
expect_clean_error "seed+reps overflow" \
    "$sim" --cpu x264 --seed 18446744073709551615 --reps 2

# Fault-injection flags: listed in --help, strict-parsed, and a tiny
# faulty checked run must complete cleanly (recovery, not a hang).
if "$sim" --help 2>&1 | grep -q -- '--fault-drop-irq'; then
    note "ok: --help lists the fault flags"
else
    note "FAIL: --help does not list --fault-drop-irq"
    failures=$((failures + 1))
fi
expect_exit0 "tiny faulty checked run" \
    "$sim" --gpu ubench --duration 0.5 --check \
    --fault-ppr-capacity 4 --fault-drop-irq 0.1 --fault-lose-signal 0.1
expect_clean_error "unknown fault flag" "$sim" --gpu ubench --fault-bogus
expect_clean_error "out-of-range --fault-drop-irq" \
    "$sim" --gpu ubench --fault-drop-irq 2
expect_clean_error "non-numeric --fault-dup-irq" \
    "$sim" --gpu ubench --fault-dup-irq maybe
expect_clean_error "zero --fault-ppr-capacity" \
    "$sim" --gpu ubench --fault-ppr-capacity 0
expect_clean_error "negative --fault-timeout" \
    "$sim" --gpu ubench --fault-timeout -5
expect_clean_error "missing --fault-retries value" \
    "$sim" --gpu ubench --fault-retries

if [ "$failures" -ne 0 ]; then
    note "$failures CLI contract check(s) failed"
    exit 1
fi
note "all CLI contract checks passed"
