/**
 * @file
 * Mitigation explorer (paper Section V).
 *
 * Runs a chosen CPU/GPU workload pair under all eight combinations
 * of the paper's three mitigations — interrupt steering, interrupt
 * coalescing, and the monolithic bottom half — and reports the
 * CPU/GPU performance and sleep residency of each, flagging the
 * Pareto-optimal configurations.
 *
 * Usage: mitigation_explorer [cpu_app] [gpu_app]
 *        (defaults: x264 ubench)
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/hiss.h"

int
main(int argc, char **argv)
{
    using namespace hiss;
    const std::string cpu_app = argc > 1 ? argv[1] : "x264";
    const std::string gpu_app = argc > 2 ? argv[2] : "ubench";

    std::printf("HISS mitigation explorer: %s (CPU) vs %s (GPU)\n\n",
                cpu_app.c_str(), gpu_app.c_str());

    // Baselines.
    ExperimentConfig base;
    base.seed = 17;
    base.gpu_demand_paging = false;
    const double cpu_baseline_ms =
        ExperimentRunner::run(cpu_app, gpu_app, base,
                              MeasureMode::CpuPrimary)
            .cpu_runtime_ms;

    struct Entry
    {
        std::string label;
        double cpu_perf;
        double gpu_metric;
        double cc6;
    };
    std::vector<Entry> entries;

    for (const MitigationConfig &combo :
         MitigationConfig::allCombinations()) {
        ExperimentConfig config;
        config.seed = 17;
        config.mitigation = combo;

        const RunResult cpu = ExperimentRunner::run(
            cpu_app, gpu_app, config, MeasureMode::CpuPrimary);
        const RunResult gpu = ExperimentRunner::run(
            cpu_app, gpu_app, config, MeasureMode::GpuPrimary);
        const RunResult sleep = ExperimentRunner::run(
            "", gpu_app, config, MeasureMode::GpuOnly);

        Entry entry;
        entry.label = combo.label();
        entry.cpu_perf =
            normalizedPerf(cpu_baseline_ms, cpu.cpu_runtime_ms);
        entry.gpu_metric = gpu_app == "ubench"
            ? gpu.gpu_ssr_rate
            : 1.0 / gpu.gpu_runtime_ms;
        entry.cc6 = sleep.cc6_fraction;
        entries.push_back(entry);
        std::fprintf(stderr, "  done: %s\n", entry.label.c_str());
    }

    // Normalize GPU metric to the default configuration.
    const double gpu_default = entries.front().gpu_metric;

    std::printf("%-28s %10s %10s %8s %8s\n", "configuration",
                "cpu_perf", "gpu_perf", "CC6(%)", "pareto");
    for (const Entry &entry : entries) {
        bool dominated = false;
        for (const Entry &other : entries) {
            if (&other == &entry)
                continue;
            if (other.cpu_perf >= entry.cpu_perf
                && other.gpu_metric >= entry.gpu_metric
                && (other.cpu_perf > entry.cpu_perf
                    || other.gpu_metric > entry.gpu_metric)) {
                dominated = true;
                break;
            }
        }
        std::printf("%-28s %10.3f %10.3f %8.1f %8s\n",
                    entry.label.c_str(), entry.cpu_perf,
                    entry.gpu_metric / gpu_default, entry.cc6 * 100.0,
                    dominated ? "" : "*");
    }
    std::printf("\n(*) = on the CPU/GPU performance Pareto frontier.\n"
                "The paper's key finding: 'default' is NOT Pareto "
                "optimal.\n");
    return 0;
}
