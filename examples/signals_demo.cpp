/**
 * @file
 * GPU signal SSRs (paper Section II-C, "Signals").
 *
 * Page faults are the paper's heavyweight SSR; signals are the
 * lightweight one — the GPU's S_SENDMSG instruction writes a
 * descriptor and interrupts a CPU, which runs the same split handler
 * chain but invokes the (Low-complexity) signal service. This demo
 * drives a burst of signals through the full path alongside a CPU
 * application, then prints delivery latency and the interference the
 * signal traffic alone caused.
 */

#include <cstdio>

#include "core/hiss.h"

int
main()
{
    using namespace hiss;

    std::printf("HISS signal-path demo: S_SENDMSG -> host handler "
                "chain\n\n");

    SystemConfig config;
    config.seed = 23;
    HeteroSystem sys(config);

    CpuAppParams app_params = parsec::params("bodytrack");
    CpuApp &app = sys.addCpuApp(app_params);
    app.start();

    // A GPU kernel that completes work items and signals the host
    // about each batch (producer/consumer notification), modeled by
    // firing signals on a timer while the CPU app runs.
    std::uint64_t delivered = 0;
    Tick latency_sum = 0;
    std::function<void()> fire = [&] {
        const Tick sent_at = sys.now();
        sys.signalQueue().sendSignal(
            [&, sent_at](CpuCore &) {
                ++delivered;
                latency_sum += sys.now() - sent_at;
            });
        if (!app.done())
            sys.events().scheduleAfter(usToTicks(50), fire);
    };
    sys.events().scheduleAfter(usToTicks(50), fire);

    sys.runUntilCondition([&app] { return app.done(); },
                          msToTicks(500));
    sys.finalizeStats();

    std::printf("bodytrack runtime          : %8.2f ms\n",
                ticksToMs(app.completionTime()));
    std::printf("signals sent / delivered   : %8llu / %llu\n",
                static_cast<unsigned long long>(
                    sys.signalQueue().signalsSent()),
                static_cast<unsigned long long>(delivered));
    std::printf("mean delivery latency      : %8.2f us\n",
                delivered > 0
                    ? ticksToUs(latency_sum)
                          / static_cast<double>(delivered)
                    : 0.0);
    std::printf("signal-driver interrupts   : %8llu\n",
                static_cast<unsigned long long>(
                    sys.kernel().procInterrupts().totalFor(
                        "gpu_signal_drv")));
    Tick ssr = 0;
    for (int c = 0; c < sys.kernel().numCores(); ++c)
        ssr += sys.kernel().core(c).ssrTicks();
    std::printf("CPU time on signal SSRs    : %8.2f %% of 4 cores\n",
                100.0 * static_cast<double>(ssr)
                    / (4.0 * static_cast<double>(sys.now())));
    std::printf("\nSignals ride the same top-half/bottom-half/worker "
                "chain as page faults,\nbut with the Table I "
                "Low-complexity service cost.\n");
    return 0;
}
