/**
 * @file
 * Interference sweep: every CPU application against every GPU
 * workload, printing normalized CPU performance (the paper's
 * Fig. 3a view) plus the SSR CPU-time fraction — a quick map of
 * which pairings suffer most.
 *
 * Usage: interference_sweep [reps]   (default 1 repetition)
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/hiss.h"

int
main(int argc, char **argv)
{
    using namespace hiss;

    const int reps = argc > 1 ? std::atoi(argv[1]) : 1;

    std::vector<std::string> headers = {"cpu_app"};
    for (const std::string &gpu : gpu_suite::workloadNames())
        headers.push_back(gpu);
    TablePrinter perf_table(headers);
    TablePrinter ssr_table(headers);

    ExperimentConfig config;
    for (const std::string &cpu : parsec::benchmarkNames()) {
        // Baseline: same pairing, GPU uses pinned memory (no SSRs).
        ExperimentConfig base_config = config;
        base_config.gpu_demand_paging = false;
        const RunResult base = ExperimentRunner::runAveraged(
            cpu, "ubench", base_config, MeasureMode::CpuPrimary, reps);

        std::vector<double> perf_row;
        std::vector<double> ssr_row;
        for (const std::string &gpu : gpu_suite::workloadNames()) {
            const RunResult r = ExperimentRunner::runAveraged(
                cpu, gpu, config, MeasureMode::CpuPrimary, reps);
            perf_row.push_back(
                normalizedPerf(base.cpu_runtime_ms, r.cpu_runtime_ms));
            ssr_row.push_back(r.ssr_cpu_fraction);
        }
        perf_table.addRow(cpu, perf_row);
        ssr_table.addRow(cpu, ssr_row);
        std::fprintf(stderr, "  done: %s\n", cpu.c_str());
    }

    std::printf("Normalized CPU performance under GPU SSRs "
                "(1.0 = no interference):\n\n");
    perf_table.print(std::cout);
    std::printf("\nFraction of CPU time consumed by SSR handling:\n\n");
    ssr_table.print(std::cout);
    return 0;
}
