/**
 * @file
 * Quickstart: measure how a GPU workload's system service requests
 * slow down an unrelated CPU application.
 *
 * Runs x264 alongside the SSR microbenchmark (ubench) twice — once
 * with the GPU using pinned memory (no SSRs) and once with demand
 * paging (SSRs) — and prints the interference the paper's Fig. 3a
 * reports.
 */

#include <cstdio>

#include "core/hiss.h"

int
main()
{
    using namespace hiss;

    ExperimentConfig config;
    config.seed = 7;

    std::printf("HISS quickstart: x264 (CPU) vs ubench (GPU)\n\n");

    // Baseline: GPU runs with pinned memory -> no SSRs reach the CPU.
    config.gpu_demand_paging = false;
    const RunResult baseline = ExperimentRunner::runAveraged(
        "x264", "ubench", config, MeasureMode::CpuPrimary);

    // Interference: GPU demand-pages -> every access is an SSR.
    config.gpu_demand_paging = true;
    const RunResult ssr = ExperimentRunner::runAveraged(
        "x264", "ubench", config, MeasureMode::CpuPrimary);

    const double perf =
        normalizedPerf(baseline.cpu_runtime_ms, ssr.cpu_runtime_ms);

    std::printf("x264 runtime without GPU SSRs : %8.2f ms\n",
                baseline.cpu_runtime_ms);
    std::printf("x264 runtime with GPU SSRs    : %8.2f ms\n",
                ssr.cpu_runtime_ms);
    std::printf("normalized CPU performance    : %8.3f  (1.0 = no loss)\n",
                perf);
    std::printf("CPU time spent handling SSRs  : %8.1f %%\n",
                ssr.ssr_cpu_fraction * 100.0);
    std::printf("SSR interrupts taken          : %8llu\n",
                static_cast<unsigned long long>(ssr.ssr_interrupts));
    return 0;
}
