/**
 * @file
 * QoS tuning walkthrough (paper Section VI).
 *
 * Demonstrates the backpressure-based CPU QoS governor: sweeps the
 * administrator-set SSR CPU-time threshold and shows the resulting
 * trade-off between CPU application protection and accelerator
 * throughput, including the governor's internal state (measured SSR
 * fraction, throttle delays applied).
 */

#include <cstdio>

#include "core/hiss.h"

int
main()
{
    using namespace hiss;

    std::printf("HISS QoS tuning: protecting facesim from ubench\n\n");

    // Baseline: no SSRs at all.
    ExperimentConfig base;
    base.seed = 11;
    base.gpu_demand_paging = false;
    const double baseline_ms =
        ExperimentRunner::run("facesim", "ubench", base,
                              MeasureMode::CpuPrimary)
            .cpu_runtime_ms;

    // Unhindered accelerator throughput (idle CPUs, no QoS).
    ExperimentConfig free_run;
    free_run.seed = 11;
    const double idle_rate =
        ExperimentRunner::run("", "ubench", free_run,
                              MeasureMode::GpuOnly)
            .gpu_ssr_rate;

    std::printf("%-10s %12s %12s %14s %16s\n", "setting",
                "cpu_perf", "ssr_cpu(%)", "gpu_tput(%)",
                "throttle_events");
    const double thresholds[] = {0.0, 0.5, 0.25, 0.10, 0.05, 0.02,
                                 0.01};
    for (const double threshold : thresholds) {
        ExperimentConfig config;
        config.seed = 11;
        config.qos_threshold = threshold;

        const RunResult cpu = ExperimentRunner::run(
            "facesim", "ubench", config, MeasureMode::CpuPrimary);
        const RunResult gpu = ExperimentRunner::run(
            "facesim", "ubench", config, MeasureMode::GpuPrimary);

        // Count throttle events in a fresh system for visibility.
        std::uint64_t delays = 0;
        if (threshold > 0.0) {
            SystemConfig sys_config;
            sys_config.seed = 11;
            sys_config.enableQos(threshold);
            HeteroSystem sys(sys_config);
            sys.launchGpu(gpu_suite::params("ubench"), true, true);
            sys.runUntil(msToTicks(10));
            delays = sys.kernel().qosGovernor()->delaysApplied();
        }

        char label[16];
        if (threshold == 0.0)
            std::snprintf(label, sizeof label, "default");
        else
            std::snprintf(label, sizeof label, "th_%g",
                          threshold * 100.0);
        std::printf("%-10s %12.3f %12.1f %14.1f %16llu\n", label,
                    normalizedPerf(baseline_ms, cpu.cpu_runtime_ms),
                    cpu.ssr_cpu_fraction * 100.0,
                    100.0 * gpu.gpu_ssr_rate / idle_rate,
                    static_cast<unsigned long long>(delays));
    }

    std::printf("\nLower thresholds protect the CPU app (perf -> 1.0)"
                " by stalling the GPU:\nbackpressure through the "
                "hardware limit on outstanding SSRs.\n");
    return 0;
}
