/**
 * @file
 * Event-queue hot-path microbenchmarks: schedule, schedule+cancel,
 * and steady-state schedule/step churn, in events per second.
 *
 * To quantify the payoff of the slot/generation rework, each pattern
 * is also run against BaselineQueue — a replica of the seed
 * implementation (std::priority_queue + std::function callbacks +
 * live_/cancelled_ unordered_sets) — so one binary reports the
 * before/after ratio directly.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/event_queue.h"

namespace {

/** The seed's event queue, kept verbatim as the comparison baseline. */
class BaselineQueue
{
  public:
    using Callback = std::function<void()>;

    hiss::Tick now() const { return now_; }

    std::uint64_t
    schedule(hiss::Tick when, Callback fn)
    {
        const std::uint64_t id = next_id_++;
        heap_.push(Entry{when, next_seq_++, id, std::move(fn)});
        live_.insert(id);
        return id;
    }

    bool
    cancel(std::uint64_t id)
    {
        if (live_.count(id) == 0)
            return false;
        live_.erase(id);
        cancelled_.insert(id);
        return true;
    }

    bool
    step()
    {
        while (!heap_.empty()) {
            Entry top = heap_.top();
            heap_.pop();
            if (cancelled_.count(top.id) > 0) {
                cancelled_.erase(top.id);
                continue;
            }
            live_.erase(top.id);
            now_ = top.when;
            top.fn();
            return true;
        }
        return false;
    }

    void
    run()
    {
        while (step()) {
        }
    }

  private:
    struct Entry
    {
        hiss::Tick when;
        std::uint64_t seq;
        std::uint64_t id;
        Callback fn;
    };
    struct Compare
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    hiss::Tick now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t next_id_ = 1;
    std::priority_queue<Entry, std::vector<Entry>, Compare> heap_;
    std::unordered_set<std::uint64_t> cancelled_;
    std::unordered_set<std::uint64_t> live_;
};

/**
 * A callback capture of realistic size: the equivalent of `this`
 * plus a couple of words, like the simulator's device callbacks.
 */
struct Payload
{
    std::uint64_t *sum;
    std::uint64_t a = 1;
    std::uint64_t b = 2;
};

template <typename Queue>
void
scheduleDrain(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        Queue q;
        std::uint64_t sum = 0;
        Payload p{&sum};
        for (std::size_t i = 0; i < n; ++i)
            q.schedule(static_cast<hiss::Tick>(i + 1),
                       [p] { *p.sum += p.a + p.b; });
        q.run();
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n)
                            * state.iterations());
}

template <typename Queue>
void
scheduleCancelDrain(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    std::vector<std::uint64_t> ids(n);
    for (auto _ : state) {
        Queue q;
        std::uint64_t sum = 0;
        Payload p{&sum};
        for (std::size_t i = 0; i < n; ++i)
            ids[i] = q.schedule(static_cast<hiss::Tick>(i + 1),
                                [p] { *p.sum += p.a; });
        // Cancel every other event, the timeout-heavy device pattern.
        for (std::size_t i = 0; i < n; i += 2)
            benchmark::DoNotOptimize(q.cancel(ids[i]));
        q.run();
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n)
                            * state.iterations());
}

/**
 * Steady-state churn: K events always pending, each execution
 * schedules a successor — the shape of the simulator's main loop.
 */
template <typename Queue>
void
churn(benchmark::State &state)
{
    const auto depth = static_cast<std::size_t>(state.range(0));
    Queue q;
    std::uint64_t executed = 0;
    std::function<void()> reschedule; // Self-scheduling closure.
    reschedule = [&] {
        ++executed;
        q.schedule(q.now() + 16, [&] { reschedule(); });
    };
    for (std::size_t i = 0; i < depth; ++i)
        q.schedule(static_cast<hiss::Tick>(i + 1),
                   [&] { reschedule(); });
    for (auto _ : state)
        q.step();
    benchmark::DoNotOptimize(executed);
    state.SetItemsProcessed(state.iterations());
}

void
BM_Schedule(benchmark::State &state)
{
    scheduleDrain<hiss::EventQueue>(state);
}
void
BM_Schedule_Seed(benchmark::State &state)
{
    scheduleDrain<BaselineQueue>(state);
}
void
BM_ScheduleCancel(benchmark::State &state)
{
    scheduleCancelDrain<hiss::EventQueue>(state);
}
void
BM_ScheduleCancel_Seed(benchmark::State &state)
{
    scheduleCancelDrain<BaselineQueue>(state);
}
void
BM_Churn(benchmark::State &state)
{
    churn<hiss::EventQueue>(state);
}
void
BM_Churn_Seed(benchmark::State &state)
{
    churn<BaselineQueue>(state);
}

BENCHMARK(BM_Schedule)->Arg(1024)->Arg(65536);
BENCHMARK(BM_Schedule_Seed)->Arg(1024)->Arg(65536);
BENCHMARK(BM_ScheduleCancel)->Arg(1024)->Arg(65536);
BENCHMARK(BM_ScheduleCancel_Seed)->Arg(1024)->Arg(65536);
BENCHMARK(BM_Churn)->Arg(64)->Arg(1024);
BENCHMARK(BM_Churn_Seed)->Arg(64)->Arg(1024);

} // namespace

BENCHMARK_MAIN();
