/**
 * @file
 * Fig. 3a: normalized performance of CPU-only applications (PARSEC)
 * under SSRs (page faults) from concurrently running GPU workloads.
 *
 * Each cell: CPU app runtime with the GPU app generating SSRs,
 * normalized to the same pair with the GPU using pinned memory (no
 * SSRs). Bars below 1 are SSR-induced slowdown. Paper headlines:
 * up to -31 % from a real GPU app (fluidanimate+sssp), -44 % from
 * the microbenchmark (x264+ubench); means -12 % / -28 %.
 */

#include <iostream>
#include <vector>

#include "bench/harness.h"

int
main(int argc, char **argv)
{
    using namespace hiss;
    const int reps = bench::repsFromArgs(argc, argv, 2);
    bench::banner(
        "Fig. 3a: CPU application performance under GPU SSRs",
        "Normalized perf (1/runtime) vs the same pair without SSRs; "
        "worst 0.56 (x264+ubench), sssp col min 0.69, means 0.88/0.72");

    std::vector<std::string> headers = {"cpu_app"};
    for (const auto &gpu : gpu_suite::workloadNames())
        headers.push_back(gpu);
    TablePrinter table(headers);

    std::vector<std::vector<double>> columns(
        gpu_suite::workloadNames().size());

    for (const auto &cpu : parsec::benchmarkNames()) {
        bench::progress(cpu);
        // Baseline: the GPU runs with pinned memory -> no SSRs. The
        // GPU app identity is irrelevant without SSRs; use ubench.
        ExperimentConfig base_config = bench::defaultConfig();
        base_config.gpu_demand_paging = false;
        const RunResult baseline = ExperimentRunner::runAveraged(
            cpu, "ubench", base_config, MeasureMode::CpuPrimary, reps);

        std::vector<double> row;
        std::size_t column = 0;
        for (const auto &gpu : gpu_suite::workloadNames()) {
            const RunResult r = ExperimentRunner::runAveraged(
                cpu, gpu, bench::defaultConfig(),
                MeasureMode::CpuPrimary, reps);
            const double perf = normalizedPerf(baseline.cpu_runtime_ms,
                                               r.cpu_runtime_ms);
            row.push_back(perf);
            columns[column++].push_back(perf);
        }
        table.addRow(cpu, row);
    }

    std::vector<double> gmeans;
    for (const auto &column : columns)
        gmeans.push_back(geomean(column));
    table.addRow("gmean", gmeans);

    table.print(std::cout);

    double worst = 1.0;
    for (const auto &column : columns)
        for (const double v : column)
            worst = std::min(worst, v);
    std::printf("\nWorst cell: %.3f (paper: 0.56). "
                "ubench column gmean: %.3f (paper ~0.72).\n",
                worst, gmeans.back());
    return 0;
}
