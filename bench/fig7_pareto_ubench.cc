/**
 * @file
 * Fig. 7: Pareto trade-off between all eight combinations of the
 * three mitigations, for the SSR microbenchmark.
 *
 * X axis: geomean (over CPU apps) of CPU workload performance while
 * ubench runs, normalized to the pair without SSRs. Y axis: geomean
 * of ubench's SSR rate relative to running with idle CPUs under the
 * default configuration. The paper finds the default configuration
 * is NOT Pareto optimal; coalescing+steering gives the best CPU
 * performance, and combinations with the monolithic handler favor
 * GPU throughput.
 */

#include <cstdio>
#include <utility>
#include <vector>

#include "bench/harness.h"

int
main(int argc, char **argv)
{
    using namespace hiss;
    const int reps = bench::repsFromArgs(argc, argv, 1);
    const bool full = bench::fullSweep(argc, argv);
    const int jobs = bench::jobsFromArgs(argc, argv);
    bench::banner(
        "Fig. 7: Pareto chart of mitigation combinations (ubench)",
        "Default is not Pareto optimal; steer+coalesce maximizes CPU "
        "perf; monolithic combinations maximize GPU throughput");

    const std::vector<std::string> cpu_apps = full
        ? parsec::benchmarkNames()
        : std::vector<std::string>{"blackscholes", "facesim",
                                   "raytrace", "streamcluster",
                                   "swaptions", "x264"};

    // Submit baselines and every combination as one parallel batch.
    bench::CellBatch batch(jobs);
    std::vector<std::size_t> baseline_ix;
    for (const auto &cpu : cpu_apps) {
        ExperimentConfig base = bench::defaultConfig();
        base.gpu_demand_paging = false;
        baseline_ix.push_back(batch.add(cpu, "ubench", base,
                                        MeasureMode::CpuPrimary, reps));
    }
    const std::size_t idle_ix = batch.add(
        "", "ubench", bench::defaultConfig(), MeasureMode::GpuOnly,
        reps);
    const auto combos = MitigationConfig::allCombinations();
    std::vector<std::vector<std::pair<std::size_t, std::size_t>>>
        combo_ix(combos.size());
    for (std::size_t k = 0; k < combos.size(); ++k) {
        ExperimentConfig config = bench::defaultConfig();
        config.mitigation = combos[k];
        for (std::size_t i = 0; i < cpu_apps.size(); ++i)
            combo_ix[k].push_back(
                {batch.add(cpu_apps[i], "ubench", config,
                           MeasureMode::CpuPrimary, reps),
                 batch.add(cpu_apps[i], "ubench", config,
                           MeasureMode::GpuPrimary, reps)});
    }
    batch.run();

    const double idle_rate = batch[idle_ix].gpu_ssr_rate;
    std::printf("%-28s %14s %14s\n", "configuration",
                "CPU perf (X)", "ubench perf (Y)");
    for (std::size_t k = 0; k < combos.size(); ++k) {
        std::vector<double> cpu_perf;
        std::vector<double> gpu_perf;
        for (std::size_t i = 0; i < cpu_apps.size(); ++i) {
            const auto &[ci, gi] = combo_ix[k][i];
            cpu_perf.push_back(normalizedPerf(
                batch[baseline_ix[i]].cpu_runtime_ms,
                batch[ci].cpu_runtime_ms));
            gpu_perf.push_back(batch[gi].gpu_ssr_rate / idle_rate);
        }
        std::printf("%-28s %14.3f %14.3f\n",
                    combos[k].label().c_str(), geomean(cpu_perf),
                    geomean(gpu_perf));
    }
    if (!full)
        std::printf("\n(6 of 13 CPU apps used; pass --full for the "
                    "complete sweep)\n");
    return 0;
}
