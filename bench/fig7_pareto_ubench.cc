/**
 * @file
 * Fig. 7: Pareto trade-off between all eight combinations of the
 * three mitigations, for the SSR microbenchmark.
 *
 * X axis: geomean (over CPU apps) of CPU workload performance while
 * ubench runs, normalized to the pair without SSRs. Y axis: geomean
 * of ubench's SSR rate relative to running with idle CPUs under the
 * default configuration. The paper finds the default configuration
 * is NOT Pareto optimal; coalescing+steering gives the best CPU
 * performance, and combinations with the monolithic handler favor
 * GPU throughput.
 */

#include <cstdio>
#include <vector>

#include "bench/harness.h"

int
main(int argc, char **argv)
{
    using namespace hiss;
    const int reps = bench::repsFromArgs(argc, argv, 1);
    const bool full = bench::fullSweep(argc, argv);
    bench::banner(
        "Fig. 7: Pareto chart of mitigation combinations (ubench)",
        "Default is not Pareto optimal; steer+coalesce maximizes CPU "
        "perf; monolithic combinations maximize GPU throughput");

    const std::vector<std::string> cpu_apps = full
        ? parsec::benchmarkNames()
        : std::vector<std::string>{"blackscholes", "facesim",
                                   "raytrace", "streamcluster",
                                   "swaptions", "x264"};

    // No-SSR CPU baselines.
    std::vector<double> cpu_baseline;
    for (const auto &cpu : cpu_apps) {
        bench::progress("baseline: " + cpu);
        ExperimentConfig base = bench::defaultConfig();
        base.gpu_demand_paging = false;
        cpu_baseline.push_back(
            ExperimentRunner::runAveraged(cpu, "ubench", base,
                                          MeasureMode::CpuPrimary,
                                          reps)
                .cpu_runtime_ms);
    }
    // Idle-CPU ubench rate under the default configuration.
    const double idle_rate =
        ExperimentRunner::runAveraged("", "ubench",
                                      bench::defaultConfig(),
                                      MeasureMode::GpuOnly, reps)
            .gpu_ssr_rate;

    std::printf("%-28s %14s %14s\n", "configuration",
                "CPU perf (X)", "ubench perf (Y)");
    for (const MitigationConfig &combo :
         MitigationConfig::allCombinations()) {
        bench::progress(combo.label());
        ExperimentConfig config = bench::defaultConfig();
        config.mitigation = combo;
        std::vector<double> cpu_perf;
        std::vector<double> gpu_perf;
        for (std::size_t i = 0; i < cpu_apps.size(); ++i) {
            const RunResult c = ExperimentRunner::runAveraged(
                cpu_apps[i], "ubench", config,
                MeasureMode::CpuPrimary, reps);
            cpu_perf.push_back(
                normalizedPerf(cpu_baseline[i], c.cpu_runtime_ms));
            const RunResult g = ExperimentRunner::runAveraged(
                cpu_apps[i], "ubench", config,
                MeasureMode::GpuPrimary, reps);
            gpu_perf.push_back(g.gpu_ssr_rate / idle_rate);
        }
        std::printf("%-28s %14.3f %14.3f\n", combo.label().c_str(),
                    geomean(cpu_perf), geomean(gpu_perf));
    }
    if (!full)
        std::printf("\n(6 of 13 CPU apps used; pass --full for the "
                    "complete sweep)\n");
    return 0;
}
