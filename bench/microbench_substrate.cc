/**
 * @file
 * google-benchmark microbenchmarks of the simulator substrate:
 * event-queue throughput, cache-model access rate, and branch
 * predictor throughput. These bound how much simulated time the
 * experiment harnesses can afford.
 */

#include <benchmark/benchmark.h>

#include "mem/branch_predictor.h"
#include "mem/cache.h"
#include "sim/event_queue.h"
#include "sim/random.h"

namespace {

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        hiss::EventQueue q;
        std::uint64_t sum = 0;
        for (std::size_t i = 0; i < n; ++i)
            q.schedule(static_cast<hiss::Tick>(i + 1), [&sum] { ++sum; });
        q.run();
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n)
                            * state.iterations());
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(65536);

void
BM_CacheAccess(benchmark::State &state)
{
    hiss::Cache cache(hiss::CacheParams{16 * 1024, 4, 64});
    hiss::Rng rng(42);
    for (auto _ : state) {
        const hiss::Addr addr = rng.uniformInt(0, 1 << 20) * 64;
        benchmark::DoNotOptimize(cache.access(addr));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_BranchPredict(benchmark::State &state)
{
    hiss::BranchPredictor bp(hiss::BranchPredictorParams{12, 12});
    hiss::Rng rng(42);
    for (auto _ : state) {
        const hiss::Addr pc = rng.uniformInt(0, 255) * 16;
        benchmark::DoNotOptimize(
            bp.predictAndUpdate(pc, rng.withProbability(0.8)));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BranchPredict);

} // namespace

BENCHMARK_MAIN();
