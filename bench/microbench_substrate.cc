/**
 * @file
 * google-benchmark microbenchmarks of the burst-sampling substrate:
 * synthetic stream generation, cache-model access rate, and branch
 * predictor throughput, each in scalar and batched form. These bound
 * how much simulated time the experiment harnesses can afford.
 *
 * All cache/BP inputs are pregenerated outside the timed loops so
 * the numbers measure the structures, not the Rng; the *Fill/&Batch
 * variants exercise the batched pipeline CpuCore::beginRunBurst uses
 * (AddressStream::fill -> Cache::accessBatch, BranchStream::fill ->
 * BranchPredictor::predictBatch). The batch and scalar variants run
 * the same inputs, so their items/s ratio is the batching win.
 * Event-queue throughput lives in microbench_event_queue.cc.
 */

#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "iommu/iommu.h"
#include "mem/address_stream.h"
#include "mem/branch_predictor.h"
#include "mem/cache.h"
#include "os/kernel.h"
#include "sim/random.h"

namespace {

/** Burst-shaped sample sizes (cpu/core.h drives 96 accesses and 48
 *  branches per user burst) plus a large batch for peak throughput. */
constexpr std::size_t kBurstAccesses = 96;
constexpr std::size_t kBurstBranches = 48;

/** Addresses with the locality bursts actually drive (default
 *  MemoryProfile: 256 KiB working set, 8 KiB hot set, 80 % hot). */
std::vector<hiss::Addr>
pregeneratedAddresses(std::size_t n)
{
    hiss::AddressStream stream(hiss::MemoryProfile{}, 0x10000000, 42);
    std::vector<hiss::Addr> addrs(n);
    stream.fill(addrs.data(), n);
    return addrs;
}

/** Branch outcomes with per-site bias, as bursts drive them. */
std::vector<hiss::BranchOutcome>
pregeneratedBranches(std::size_t n)
{
    hiss::BranchStream stream(hiss::BranchProfile{}, 0x40000, 42);
    std::vector<hiss::BranchOutcome> outs(n);
    stream.fill(outs.data(), n);
    return outs;
}

void
BM_CacheAccess(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    hiss::Cache cache(hiss::CacheParams{16 * 1024, 4, 64});
    const auto addrs = pregeneratedAddresses(n);
    for (auto _ : state) {
        std::uint64_t hits = 0;
        for (std::size_t i = 0; i < n; ++i)
            hits += static_cast<std::uint64_t>(cache.access(addrs[i]));
        benchmark::DoNotOptimize(hits);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n)
                            * state.iterations());
}
BENCHMARK(BM_CacheAccess)->Arg(kBurstAccesses)->Arg(4096);

void
BM_CacheAccessBatch(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    hiss::Cache cache(hiss::CacheParams{16 * 1024, 4, 64});
    const auto addrs = pregeneratedAddresses(n);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.accessBatch(addrs.data(), n));
    state.SetItemsProcessed(static_cast<std::int64_t>(n)
                            * state.iterations());
}
BENCHMARK(BM_CacheAccessBatch)->Arg(kBurstAccesses)->Arg(4096);

/** 8-way geometry: the widest vector-probe special case (one AVX2
 *  quad-compare pair per set). */
void
BM_CacheAccessBatch8Way(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    hiss::Cache cache(hiss::CacheParams{32 * 1024, 8, 64});
    const auto addrs = pregeneratedAddresses(n);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.accessBatch(addrs.data(), n));
    state.SetItemsProcessed(static_cast<std::int64_t>(n)
                            * state.iterations());
}
BENCHMARK(BM_CacheAccessBatch8Way)->Arg(4096);

/** Same batch with the probe kernel pinned to portable scalar — the
 *  non-x86 / HISS_SIMD=OFF floor, and the denominator of the SIMD
 *  speedup. */
void
BM_CacheAccessBatchPortable(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    hiss::Cache cache(hiss::CacheParams{16 * 1024, 4, 64});
    const auto addrs = pregeneratedAddresses(n);
    hiss::Cache::setKernel(hiss::CacheKernel::Portable);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.accessBatch(addrs.data(), n));
    hiss::Cache::setKernel(hiss::Cache::bestKernel());
    state.SetItemsProcessed(static_cast<std::int64_t>(n)
                            * state.iterations());
}
BENCHMARK(BM_CacheAccessBatchPortable)->Arg(4096);

void
BM_BranchPredict(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    hiss::BranchPredictor bp(hiss::BranchPredictorParams{12, 12});
    const auto outs = pregeneratedBranches(n);
    for (auto _ : state) {
        std::uint64_t correct = 0;
        for (std::size_t i = 0; i < n; ++i)
            correct += static_cast<std::uint64_t>(
                bp.predictAndUpdate(outs[i].pc, outs[i].taken));
        benchmark::DoNotOptimize(correct);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n)
                            * state.iterations());
}
BENCHMARK(BM_BranchPredict)->Arg(kBurstBranches)->Arg(4096);

void
BM_BranchPredictBatch(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    hiss::BranchPredictor bp(hiss::BranchPredictorParams{12, 12});
    const auto outs = pregeneratedBranches(n);
    for (auto _ : state)
        benchmark::DoNotOptimize(bp.predictBatch(outs.data(), n));
    state.SetItemsProcessed(static_cast<std::int64_t>(n)
                            * state.iterations());
}
BENCHMARK(BM_BranchPredictBatch)->Arg(kBurstBranches)->Arg(4096);

void
BM_AddressStreamNext(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    hiss::AddressStream stream(hiss::MemoryProfile{}, 0x10000000, 42);
    std::vector<hiss::Addr> buf(n);
    for (auto _ : state) {
        for (std::size_t i = 0; i < n; ++i)
            buf[i] = stream.next();
        benchmark::DoNotOptimize(buf.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n)
                            * state.iterations());
}
BENCHMARK(BM_AddressStreamNext)->Arg(kBurstAccesses);

void
BM_AddressStreamFill(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    hiss::AddressStream stream(hiss::MemoryProfile{}, 0x10000000, 42);
    std::vector<hiss::Addr> buf(n);
    for (auto _ : state) {
        stream.fill(buf.data(), n);
        benchmark::DoNotOptimize(buf.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n)
                            * state.iterations());
}
BENCHMARK(BM_AddressStreamFill)->Arg(kBurstAccesses);

void
BM_BranchStreamNext(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    hiss::BranchStream stream(hiss::BranchProfile{}, 0x40000, 42);
    std::vector<hiss::BranchOutcome> buf(n);
    for (auto _ : state) {
        for (std::size_t i = 0; i < n; ++i)
            buf[i] = stream.next();
        benchmark::DoNotOptimize(buf.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n)
                            * state.iterations());
}
BENCHMARK(BM_BranchStreamNext)->Arg(kBurstBranches);

void
BM_BranchStreamFill(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    hiss::BranchStream stream(hiss::BranchProfile{}, 0x40000, 42);
    std::vector<hiss::BranchOutcome> buf(n);
    for (auto _ : state) {
        stream.fill(buf.data(), n);
        benchmark::DoNotOptimize(buf.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n)
                            * state.iterations());
}
BENCHMARK(BM_BranchStreamFill)->Arg(kBurstBranches);

/**
 * End-to-end burst sample, the shape CpuCore::beginRunBurst runs per
 * user burst: generate 96 addresses + 48 branches from live streams
 * and drive them through the L1D and predictor. Items = one whole
 * burst sample. Scalar variant is the seed's structure (interleaved
 * next()/access() calls); batch is the current pipeline.
 */
void
BM_BurstSampleScalar(benchmark::State &state)
{
    hiss::Cache cache(hiss::CacheParams{16 * 1024, 4, 64});
    hiss::BranchPredictor bp(hiss::BranchPredictorParams{12, 12});
    hiss::AddressStream astream(hiss::MemoryProfile{}, 0x10000000, 42);
    hiss::BranchStream bstream(hiss::BranchProfile{}, 0x40000, 43);
    for (auto _ : state) {
        std::uint64_t events = 0;
        for (std::size_t i = 0; i < kBurstAccesses; ++i)
            events += static_cast<std::uint64_t>(
                cache.access(astream.next()));
        for (std::size_t i = 0; i < kBurstBranches; ++i) {
            const auto out = bstream.next();
            events += static_cast<std::uint64_t>(
                bp.predictAndUpdate(out.pc, out.taken));
        }
        benchmark::DoNotOptimize(events);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BurstSampleScalar);

void
BM_BurstSampleBatch(benchmark::State &state)
{
    hiss::Cache cache(hiss::CacheParams{16 * 1024, 4, 64});
    hiss::BranchPredictor bp(hiss::BranchPredictorParams{12, 12});
    hiss::AddressStream astream(hiss::MemoryProfile{}, 0x10000000, 42);
    hiss::BranchStream bstream(hiss::BranchProfile{}, 0x40000, 43);
    std::vector<hiss::Addr> addrs(kBurstAccesses);
    std::vector<hiss::BranchOutcome> outs(kBurstBranches);
    for (auto _ : state) {
        astream.fill(addrs.data(), kBurstAccesses);
        std::uint64_t events =
            cache.accessBatch(addrs.data(), kBurstAccesses);
        bstream.fill(outs.data(), kBurstBranches);
        events += bp.predictBatch(outs.data(), kBurstBranches);
        benchmark::DoNotOptimize(events);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BurstSampleBatch);

/**
 * IOTLB-hit translate throughput through the event queue, scalar vs
 * translateBatch. The IOTLB is pre-warmed with every probed VPN, so
 * the numbers measure the flat probe table plus event scheduling (the
 * batch variant fuses the per-request completion events into one).
 * Items = translations completed.
 */
class IommuBench
{
  public:
    IommuBench()
        : ctx_{events_, stats_, 42},
          kernel_([this] {
              hiss::KernelParams kparams;
              kparams.housekeeping_period = 0;
              return hiss::Kernel(ctx_, 1, hiss::CpuCoreParams{},
                                  kparams);
          }()),
          iommu_(ctx_, kernel_, hiss::IommuParams{})
    {
        for (hiss::Vpn v = 0; v < kVpns; ++v)
            kernel_.gpuPageTable().map(v, v + 100);
        // Warm: one walk per VPN installs it in the IOTLB.
        for (hiss::Vpn v = 0; v < kVpns; ++v) {
            iommu_.translate(v, [](hiss::TranslateResult) {});
            events_.runUntil(events_.now() + hiss::usToTicks(2));
        }
    }

    static constexpr hiss::Vpn kVpns = 64;

    hiss::Iommu &iommu() { return iommu_; }
    hiss::EventQueue &events() { return events_; }

  private:
    hiss::EventQueue events_;
    hiss::StatRegistry stats_;
    hiss::SimContext ctx_;
    hiss::Kernel kernel_;
    hiss::Iommu iommu_;
};

void
BM_IommuTranslateScalar(benchmark::State &state)
{
    IommuBench bench;
    std::uint64_t done = 0;
    for (auto _ : state) {
        for (hiss::Vpn v = 0; v < IommuBench::kVpns; ++v)
            bench.iommu().translate(
                v, [&done](hiss::TranslateResult) { ++done; });
        bench.events().runUntil(bench.events().now()
                                + hiss::usToTicks(2));
    }
    benchmark::DoNotOptimize(done);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(IommuBench::kVpns)
        * state.iterations());
}
BENCHMARK(BM_IommuTranslateScalar);

void
BM_IommuTranslateBatch(benchmark::State &state)
{
    IommuBench bench;
    std::uint64_t done = 0;
    std::vector<hiss::Iommu::TranslateRequest> reqs;
    for (auto _ : state) {
        reqs.clear();
        for (hiss::Vpn v = 0; v < IommuBench::kVpns; ++v)
            reqs.push_back(
                {v, [&done](hiss::TranslateResult) { ++done; }, {}});
        bench.iommu().translateBatch(std::move(reqs));
        reqs.clear();
        bench.events().runUntil(bench.events().now()
                                + hiss::usToTicks(2));
    }
    benchmark::DoNotOptimize(done);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(IommuBench::kVpns)
        * state.iterations());
}
BENCHMARK(BM_IommuTranslateBatch);

} // namespace

BENCHMARK_MAIN();
