/**
 * @file
 * Extension: multi-accelerator projection.
 *
 * The paper's motivation: "future systems will have numerous highly
 * capable accelerators ... this problem may be exacerbated as future
 * chips include many such accelerators that request system services
 * at a higher rate." This harness adds 1-4 concurrent accelerators,
 * each demand-paging an sssp-like workload through the shared IOMMU
 * and host SSR path, and measures CPU application slowdown, sleep
 * residency, and per-accelerator throughput — with and without the
 * QoS governor containing the aggregate load.
 */

#include <cstdio>
#include <vector>

#include "bench/harness.h"

namespace {

using namespace hiss;

struct Outcome
{
    double cpu_runtime_ms = 0.0;
    double cc6 = 0.0;
    double faults_per_sec = 0.0;
    double ssr_fraction = 0.0;
};

Outcome
run(int accelerators, double qos_threshold, std::uint64_t seed)
{
    SystemConfig config;
    config.seed = seed;
    if (qos_threshold > 0.0)
        config.enableQos(qos_threshold);
    HeteroSystem sys(config);

    CpuAppParams app_params = parsec::params("facesim");
    CpuApp &app = sys.addCpuApp(app_params);
    app.start();

    const GpuWorkloadParams workload = gpu_suite::params("sssp");
    sys.launchGpu(workload, true, true);
    std::vector<Gpu *> gpus = {&sys.gpu()};
    for (int a = 1; a < accelerators; ++a) {
        Gpu &extra = sys.addAccelerator();
        extra.launch(workload, true, true);
        gpus.push_back(&extra);
    }

    sys.runUntilCondition([&app] { return app.done(); },
                          msToTicks(600));
    sys.finalizeStats();

    Outcome out;
    out.cpu_runtime_ms = ticksToMs(
        app.done() ? app.completionTime() : sys.now());
    double cc6 = 0.0;
    Tick ssr = 0;
    for (int c = 0; c < sys.kernel().numCores(); ++c) {
        cc6 += static_cast<double>(sys.kernel().core(c).cc6Ticks());
        ssr += sys.kernel().core(c).ssrTicks();
    }
    out.cc6 = cc6 / (4.0 * static_cast<double>(sys.now()));
    out.ssr_fraction = static_cast<double>(ssr)
        / (4.0 * static_cast<double>(sys.now()));
    std::uint64_t faults = 0;
    for (Gpu *gpu : gpus)
        faults += gpu->faultsResolved();
    out.faults_per_sec =
        static_cast<double>(faults) / ticksToSec(sys.now());
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hiss;
    (void)argc;
    (void)argv;
    bench::banner(
        "Extension: accelerator-rich SoC projection (1-4 GPUs)",
        "Intro/Section IV: interference 'may be exacerbated in "
        "future systems with more accelerators'; Section VI: QoS "
        "bounds it");

    const Outcome baseline = [] {
        SystemConfig config;
        config.seed = 1;
        HeteroSystem sys(config);
        CpuApp &app = sys.addCpuApp(parsec::params("facesim"));
        app.start();
        sys.runUntilCondition([&app] { return app.done(); },
                              msToTicks(600));
        Outcome out;
        out.cpu_runtime_ms = ticksToMs(app.completionTime());
        return out;
    }();

    std::printf("%-8s %-8s %10s %10s %12s %12s\n", "accels", "qos",
                "cpu_perf", "CC6(%)", "ssr_cpu(%)", "faults/s");
    for (int n = 1; n <= 4; ++n) {
        bench::progress(std::to_string(n) + " accelerator(s)");
        const Outcome plain = run(n, 0.0, 1);
        std::printf("%-8d %-8s %10.3f %10.1f %12.1f %12.0f\n", n,
                    "off",
                    baseline.cpu_runtime_ms / plain.cpu_runtime_ms,
                    plain.cc6 * 100.0, plain.ssr_fraction * 100.0,
                    plain.faults_per_sec);
        const Outcome qos = run(n, 0.05, 1);
        std::printf("%-8d %-8s %10.3f %10.1f %12.1f %12.0f\n", n,
                    "th_5",
                    baseline.cpu_runtime_ms / qos.cpu_runtime_ms,
                    qos.cc6 * 100.0, qos.ssr_fraction * 100.0,
                    qos.faults_per_sec);
    }
    std::printf("\nCPU slowdown and SSR CPU share grow with every "
                "added accelerator; the QoS governor caps the "
                "aggregate at the same budget regardless of how many "
                "devices produce it.\n");
    return 0;
}
