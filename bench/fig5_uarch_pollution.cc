/**
 * @file
 * Fig. 5: microarchitectural effects of GPU SSRs on user-level CPU
 * execution — the increase in (a) L1D miss rate and (b) branch
 * misprediction rate of each PARSEC application while the
 * microbenchmark generates SSRs.
 *
 * Paper: L1D miss-rate increases reach ~50 %; branch misprediction
 * increases reach ~25-30 %. Both are relative increases over the
 * same pair without SSRs, and arise from SSR handlers polluting the
 * shared structures (Fig. 2's indirect overhead 'b').
 */

#include <cstdio>

#include "bench/harness.h"

int
main(int argc, char **argv)
{
    using namespace hiss;
    const int reps = bench::repsFromArgs(argc, argv, 2);
    bench::banner(
        "Fig. 5: user-level L1D miss and branch mispredict increases "
        "from ubench SSRs",
        "(a) L1D miss-rate increase up to ~50 %; (b) branch "
        "misprediction increase up to ~30 %");

    std::printf("%-14s %12s %12s %14s %12s %12s %14s\n", "cpu_app",
                "L1D_base", "L1D_ssr", "L1D_incr(%)", "bp_base",
                "bp_ssr", "bp_incr(%)");
    for (const auto &cpu : parsec::benchmarkNames()) {
        bench::progress(cpu);
        ExperimentConfig base = bench::defaultConfig();
        base.gpu_demand_paging = false;
        const RunResult clean = ExperimentRunner::runAveraged(
            cpu, "ubench", base, MeasureMode::CpuPrimary, reps);
        const RunResult ssr = ExperimentRunner::runAveraged(
            cpu, "ubench", bench::defaultConfig(),
            MeasureMode::CpuPrimary, reps);
        const double l1d_incr = clean.user_l1d_miss_rate > 0
            ? (ssr.user_l1d_miss_rate / clean.user_l1d_miss_rate - 1.0)
                * 100.0
            : 0.0;
        const double bp_incr = clean.user_branch_miss_rate > 0
            ? (ssr.user_branch_miss_rate / clean.user_branch_miss_rate
               - 1.0) * 100.0
            : 0.0;
        std::printf("%-14s %12.4f %12.4f %14.1f %12.4f %12.4f %14.1f\n",
                    cpu.c_str(), clean.user_l1d_miss_rate,
                    ssr.user_l1d_miss_rate, l1d_incr,
                    clean.user_branch_miss_rate,
                    ssr.user_branch_miss_rate, bp_incr);
    }
    return 0;
}
