/**
 * @file
 * Fig. 2 (quantified): anatomy of GPU service request overheads.
 *
 * The paper's Fig. 2 is a conceptual timeline: hardirq top half on
 * one core, IPI-woken bottom half on another, deferred worker on a
 * third, with direct (kernel execution, mode switches) and indirect
 * (pollution) overheads. This harness measures that timeline in the
 * model: the per-stage latency decomposition of every serviced SSR
 * and the direct CPU overhead split, for each GPU workload against
 * an idle system and against a fully loaded one.
 */

#include <cstdio>
#include <memory>

#include "bench/harness.h"

namespace {

using namespace hiss;

void
runCase(const std::string &gpu, const std::string &cpu)
{
    SystemConfig config;
    config.seed = 3;
    HeteroSystem sys(config);
    CpuApp *app = nullptr;
    if (!cpu.empty()) {
        CpuAppParams params = parsec::params(cpu);
        params.iterations = 1'000'000'000ULL;
        app = &sys.addCpuApp(params);
        app->start();
    }
    sys.launchGpu(gpu_suite::params(gpu), true, true);
    sys.runUntil(msToTicks(30));
    sys.finalizeStats();

    const SsrStageStats &stages =
        sys.kernel().services().stageStats();
    const auto mean_us = [](const Distribution *d) {
        return d->count() > 0 ? d->mean() / 1000.0 : 0.0;
    };
    std::printf("%-8s %-14s %10.2f %10.2f %10.2f %10.2f %10.2f %8llu\n",
                gpu.c_str(), cpu.empty() ? "(idle)" : cpu.c_str(),
                mean_us(stages.issue_to_drain),
                mean_us(stages.drain_to_queue),
                mean_us(stages.queue_to_service),
                mean_us(stages.service_to_done),
                mean_us(stages.total),
                static_cast<unsigned long long>(
                    stages.total->count()));
}

} // namespace

int
main()
{
    using namespace hiss;
    bench::banner(
        "Fig. 2 (quantified): per-stage SSR pipeline latency (us)",
        "Top half runs in hardirq on the interrupted core; the "
        "bottom half is woken (IPI if remote); a kworker performs "
        "the service. Busy CPUs lengthen the wake/scheduling stages.");

    std::printf("%-8s %-14s %10s %10s %10s %10s %10s %8s\n", "gpu",
                "cpu_load", "msi+irq", "bh_stage", "wq_wait",
                "service", "total", "n");
    for (const std::string gpu : {"sssp", "bpt", "ubench"}) {
        runCase(gpu, "");
        runCase(gpu, "streamcluster");
    }

    std::printf("\nDirect CPU overhead split for ubench (idle system, "
                "30 ms):\n");
    SystemConfig config;
    config.seed = 4;
    HeteroSystem sys(config);
    sys.launchGpu(gpu_suite::params("ubench"), true, true);
    sys.runUntil(msToTicks(30));
    sys.finalizeStats();
    Tick kernel_total = 0;
    Tick ssr_total = 0;
    std::uint64_t irqs = 0;
    std::uint64_t ipis = 0;
    std::uint64_t mode_switches = 0;
    for (int c = 0; c < sys.kernel().numCores(); ++c) {
        CpuCore &core = sys.kernel().core(c);
        kernel_total += core.kernelTicks();
        ssr_total += core.ssrTicks();
        irqs += core.irqCount();
        ipis += core.ipiCount();
        mode_switches += static_cast<std::uint64_t>(
            sys.stats().valueOf("core" + std::to_string(c)
                                + ".mode_switches"));
    }
    std::printf("  kernel time: %.2f ms (%.1f %% of 4 cores x 30 ms); "
                "SSR share %.2f ms\n",
                ticksToMs(kernel_total),
                100.0 * static_cast<double>(kernel_total)
                    / (4.0 * static_cast<double>(msToTicks(30))),
                ticksToMs(ssr_total));
    std::printf("  interrupts: %llu (%llu IPIs), mode switches: %llu\n",
                static_cast<unsigned long long>(irqs),
                static_cast<unsigned long long>(ipis),
                static_cast<unsigned long long>(mode_switches));
    return 0;
}
