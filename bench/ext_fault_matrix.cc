/**
 * @file
 * Extension: fault-rate sensitivity matrix.
 *
 * Sweeps the injected MSI drop probability (with the signal-loss and
 * kworker-stall classes riding along at the same rate, over a finite
 * PPR queue) and reports how CPU slowdown and the aborted-wavefront
 * count respond. The interesting result is the shape: recovery
 * (watchdog re-raise plus driver retry) keeps the chain flowing, so
 * CPU interference barely moves — the faults surface on the GPU as
 * wavefront aborts once stalled kworkers lose races with the request
 * watchdog.
 */

#include <cstdio>
#include <vector>

#include "bench/harness.h"

int
main(int argc, char **argv)
{
    using namespace hiss;
    const int reps = bench::repsFromArgs(argc, argv, 2);
    const int jobs = bench::jobsFromArgs(argc, argv);
    bench::banner(
        "Extension: fault rate vs. CPU slowdown and GPU aborts",
        "robustness of the SSR chain under injected device/IRQ "
        "faults (docs/MODEL.md failure model)");

    const std::vector<double> drop_rates = {0.0, 0.01, 0.05, 0.10,
                                            0.20};

    bench::CellBatch batch(jobs);
    std::vector<std::size_t> solo_ix;
    std::vector<std::size_t> pair_ix;
    for (const double rate : drop_rates) {
        ExperimentConfig config = bench::defaultConfig();
        if (rate > 0.0) {
            config.fault.irq_drop_prob = rate;
            config.fault.signal_loss_prob = rate;
            config.fault.kworker_stall_prob = rate;
            config.fault.ppr_queue_capacity = 8;
            config.fault.request_timeout = usToTicks(300.0);
        }
        solo_ix.push_back(batch.add("x264", "", config,
                                    MeasureMode::CpuOnly, reps));
        pair_ix.push_back(batch.add("x264", "sssp", config,
                                    MeasureMode::CpuPrimary, reps));
    }
    batch.run();

    const double solo_base = batch[solo_ix[0]].cpu_runtime_ms;
    std::printf("%-10s %14s %12s %14s %14s\n", "drop_p",
                "cpu pair (ms)", "slowdown", "aborted_wf",
                "ssr_cpu%");
    for (std::size_t i = 0; i < drop_rates.size(); ++i) {
        const RunResult &pair = batch[pair_ix[i]];
        std::printf("%-10.2f %14.3f %12.3f %14llu %14.2f\n",
                    drop_rates[i], pair.cpu_runtime_ms,
                    solo_base > 0.0 ? pair.cpu_runtime_ms / solo_base
                                    : 0.0,
                    static_cast<unsigned long long>(
                        pair.aborted_wavefronts),
                    100.0 * pair.ssr_cpu_fraction);
    }
    std::printf("\nMSI drops are absorbed by the device watchdog: the "
                "re-raise batches the PPR drain, so the CPU actually "
                "sees FEWER interrupts as drop_p grows and the "
                "slowdown eases toward solo. The cost lands on the "
                "GPU instead — stalled kworkers lose races with the "
                "request watchdog and the aborted-wavefront count "
                "climbs with the fault rate.\n");
    return 0;
}
