/**
 * @file
 * Fig. 8: Pareto trade-off between mitigation combinations for the
 * non-microbenchmark GPU applications (bfs, bpt, spmv, sssp,
 * xsbench).
 *
 * X axis: geomean of CPU workload performance (vs no-SSR baseline)
 * across CPU apps and GPU apps. Y axis: geomean of GPU performance
 * vs the default-configuration idle-CPU baseline. Paper findings:
 * the default is again not Pareto optimal; steering+coalescing buys
 * ~10 % CPU performance for a ~35 % GPU slowdown; monolithic
 * combinations favor the GPU.
 */

#include <cstdio>
#include <utility>
#include <vector>

#include "bench/harness.h"

int
main(int argc, char **argv)
{
    using namespace hiss;
    const int reps = bench::repsFromArgs(argc, argv, 1);
    const bool full = bench::fullSweep(argc, argv);
    const int jobs = bench::jobsFromArgs(argc, argv);
    bench::banner(
        "Fig. 8: Pareto chart of mitigation combinations "
        "(non-ubench GPU apps)",
        "Default not Pareto optimal; steer+coalesce trades ~35 % GPU "
        "for ~10 % CPU; monolithic favors GPU");

    const std::vector<std::string> cpu_apps = full
        ? parsec::benchmarkNames()
        : std::vector<std::string>{"facesim", "raytrace",
                                   "streamcluster", "swaptions",
                                   "x264"};
    const std::vector<std::string> gpu_apps = {"bfs", "bpt", "spmv",
                                               "sssp", "xsbench"};

    // Baselines (no-SSR CPU runtimes, default idle-CPU GPU times) and
    // every mitigation combination, submitted as one parallel batch.
    bench::CellBatch batch(jobs);
    std::vector<std::size_t> cpu_baseline_ix;
    for (const auto &cpu : cpu_apps) {
        ExperimentConfig base = bench::defaultConfig();
        base.gpu_demand_paging = false;
        cpu_baseline_ix.push_back(
            batch.add(cpu, "ubench", base, MeasureMode::CpuPrimary,
                      reps));
    }
    std::vector<std::size_t> gpu_idle_ix;
    for (const auto &gpu : gpu_apps)
        gpu_idle_ix.push_back(batch.add("", gpu,
                                        bench::defaultConfig(),
                                        MeasureMode::GpuOnly, reps));
    const auto combos = MitigationConfig::allCombinations();
    std::vector<std::vector<std::pair<std::size_t, std::size_t>>>
        combo_ix(combos.size());
    for (std::size_t k = 0; k < combos.size(); ++k) {
        ExperimentConfig config = bench::defaultConfig();
        config.mitigation = combos[k];
        for (std::size_t i = 0; i < cpu_apps.size(); ++i)
            for (std::size_t j = 0; j < gpu_apps.size(); ++j)
                combo_ix[k].push_back(
                    {batch.add(cpu_apps[i], gpu_apps[j], config,
                               MeasureMode::CpuPrimary, reps),
                     batch.add(cpu_apps[i], gpu_apps[j], config,
                               MeasureMode::GpuPrimary, reps)});
    }
    batch.run();

    std::printf("%-28s %14s %14s\n", "configuration",
                "CPU perf (X)", "GPU perf (Y)");
    for (std::size_t k = 0; k < combos.size(); ++k) {
        std::vector<double> cpu_perf;
        std::vector<double> gpu_perf;
        std::size_t cell = 0;
        for (std::size_t i = 0; i < cpu_apps.size(); ++i) {
            for (std::size_t j = 0; j < gpu_apps.size(); ++j) {
                const auto &[ci, gi] = combo_ix[k][cell++];
                cpu_perf.push_back(normalizedPerf(
                    batch[cpu_baseline_ix[i]].cpu_runtime_ms,
                    batch[ci].cpu_runtime_ms));
                gpu_perf.push_back(normalizedPerf(
                    batch[gpu_idle_ix[j]].gpu_runtime_ms,
                    batch[gi].gpu_runtime_ms));
            }
        }
        std::printf("%-28s %14.3f %14.3f\n",
                    combos[k].label().c_str(), geomean(cpu_perf),
                    geomean(gpu_perf));
    }
    if (!full)
        std::printf("\n(5 of 13 CPU apps used; pass --full for the "
                    "complete sweep)\n");
    return 0;
}
