/**
 * @file
 * Fig. 8: Pareto trade-off between mitigation combinations for the
 * non-microbenchmark GPU applications (bfs, bpt, spmv, sssp,
 * xsbench).
 *
 * X axis: geomean of CPU workload performance (vs no-SSR baseline)
 * across CPU apps and GPU apps. Y axis: geomean of GPU performance
 * vs the default-configuration idle-CPU baseline. Paper findings:
 * the default is again not Pareto optimal; steering+coalescing buys
 * ~10 % CPU performance for a ~35 % GPU slowdown; monolithic
 * combinations favor the GPU.
 */

#include <cstdio>
#include <vector>

#include "bench/harness.h"

int
main(int argc, char **argv)
{
    using namespace hiss;
    const int reps = bench::repsFromArgs(argc, argv, 1);
    const bool full = bench::fullSweep(argc, argv);
    bench::banner(
        "Fig. 8: Pareto chart of mitigation combinations "
        "(non-ubench GPU apps)",
        "Default not Pareto optimal; steer+coalesce trades ~35 % GPU "
        "for ~10 % CPU; monolithic favors GPU");

    const std::vector<std::string> cpu_apps = full
        ? parsec::benchmarkNames()
        : std::vector<std::string>{"facesim", "raytrace",
                                   "streamcluster", "swaptions",
                                   "x264"};
    const std::vector<std::string> gpu_apps = {"bfs", "bpt", "spmv",
                                               "sssp", "xsbench"};

    // Baselines: no-SSR CPU runtimes and default idle-CPU GPU times.
    std::vector<double> cpu_baseline;
    for (const auto &cpu : cpu_apps) {
        bench::progress("baseline: " + cpu);
        ExperimentConfig base = bench::defaultConfig();
        base.gpu_demand_paging = false;
        cpu_baseline.push_back(
            ExperimentRunner::runAveraged(cpu, "ubench", base,
                                          MeasureMode::CpuPrimary,
                                          reps)
                .cpu_runtime_ms);
    }
    std::vector<double> gpu_idle;
    for (const auto &gpu : gpu_apps) {
        bench::progress("idle baseline: " + gpu);
        gpu_idle.push_back(
            ExperimentRunner::runAveraged("", gpu,
                                          bench::defaultConfig(),
                                          MeasureMode::GpuOnly, reps)
                .gpu_runtime_ms);
    }

    std::printf("%-28s %14s %14s\n", "configuration",
                "CPU perf (X)", "GPU perf (Y)");
    for (const MitigationConfig &combo :
         MitigationConfig::allCombinations()) {
        bench::progress(combo.label());
        ExperimentConfig config = bench::defaultConfig();
        config.mitigation = combo;
        std::vector<double> cpu_perf;
        std::vector<double> gpu_perf;
        for (std::size_t i = 0; i < cpu_apps.size(); ++i) {
            for (std::size_t j = 0; j < gpu_apps.size(); ++j) {
                const RunResult c = ExperimentRunner::runAveraged(
                    cpu_apps[i], gpu_apps[j], config,
                    MeasureMode::CpuPrimary, reps);
                cpu_perf.push_back(
                    normalizedPerf(cpu_baseline[i], c.cpu_runtime_ms));
                const RunResult g = ExperimentRunner::runAveraged(
                    cpu_apps[i], gpu_apps[j], config,
                    MeasureMode::GpuPrimary, reps);
                gpu_perf.push_back(
                    normalizedPerf(gpu_idle[j], g.gpu_runtime_ms));
            }
        }
        std::printf("%-28s %14.3f %14.3f\n", combo.label().c_str(),
                    geomean(cpu_perf), geomean(gpu_perf));
    }
    if (!full)
        std::printf("\n(5 of 13 CPU apps used; pass --full for the "
                    "complete sweep)\n");
    return 0;
}
