/**
 * @file
 * Section IV-C: analysis of SSR overhead sources.
 *
 * Reproduces the two quantitative observations: (1) SSR interrupts
 * are distributed across all CPUs (/proc/interrupts), so every core
 * suffers direct overheads; and (2) inter-processor interrupts
 * explode when the microbenchmark creates SSRs (the paper measures a
 * 477x increase) because the top half wakes the bottom half on a
 * different core.
 */

#include <cstdio>

#include "bench/harness.h"

int
main(int argc, char **argv)
{
    using namespace hiss;
    const int reps = bench::repsFromArgs(argc, argv, 2);
    bench::banner(
        "Section IV-C: interrupt distribution and IPI amplification",
        "SSR interrupts evenly spread over all CPUs; 477x more IPIs "
        "when ubench creates SSRs");

    bench::progress("ubench with SSRs (busy CPUs)");
    const RunResult ssr = ExperimentRunner::runAveraged(
        "streamcluster", "ubench", bench::defaultConfig(),
        MeasureMode::CpuPrimary, reps);

    bench::progress("ubench without SSRs (baseline IPIs)");
    ExperimentConfig base = bench::defaultConfig();
    base.gpu_demand_paging = false;
    const RunResult no_ssr = ExperimentRunner::runAveraged(
        "streamcluster", "ubench", base, MeasureMode::CpuPrimary,
        reps);

    std::printf("SSR interrupt distribution across cores "
                "(busy system):\n");
    std::printf("%-8s %12s %10s\n", "core", "ssr_irqs", "share(%)");
    for (std::size_t c = 0; c < ssr.ssr_irqs_per_core.size(); ++c) {
        const double share = ssr.ssr_interrupts > 0
            ? 100.0
                * static_cast<double>(ssr.ssr_irqs_per_core[c])
                / static_cast<double>(ssr.ssr_interrupts)
            : 0.0;
        std::printf("CPU%-5zu %12llu %10.1f\n", c,
                    static_cast<unsigned long long>(
                        ssr.ssr_irqs_per_core[c]),
                    share);
    }

    const double rate_per_ms = ssr.elapsed_ms > 0
        ? static_cast<double>(ssr.total_ipis) / ssr.elapsed_ms : 0.0;
    const double base_rate_per_ms = no_ssr.elapsed_ms > 0
        ? static_cast<double>(no_ssr.total_ipis) / no_ssr.elapsed_ms
        : 0.0;
    const double amplification = base_rate_per_ms > 0
        ? rate_per_ms / base_rate_per_ms : 0.0;

    std::printf("\nIPI rate without SSRs: %8.2f /ms\n",
                base_rate_per_ms);
    std::printf("IPI rate with SSRs   : %8.2f /ms\n", rate_per_ms);
    std::printf("Amplification        : %8.1fx  (paper: 477x)\n",
                amplification);
    return 0;
}
