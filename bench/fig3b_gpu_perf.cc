/**
 * @file
 * Fig. 3b: normalized GPU performance when making SSRs while running
 * concurrently with CPU applications, normalized to the same GPU app
 * with idle CPUs.
 *
 * Paper headlines: host interference slows GPU work by up to 18 %
 * (sssp+streamcluster), 4 % on average; streamcluster's column mean
 * is -8 %; a few cells exceed 1 because busy (awake) CPUs respond
 * faster than sleeping ones. ubench's performance metric is its SSR
 * rate (paper Fig. 6 note).
 */

#include <iostream>
#include <vector>

#include "bench/harness.h"

int
main(int argc, char **argv)
{
    using namespace hiss;
    const int reps = bench::repsFromArgs(argc, argv, 2);
    bench::banner(
        "Fig. 3b: GPU application performance vs idle-CPU baseline",
        "Worst 0.82 (sssp+streamcluster); mean -4 %; some cells > 1");

    std::vector<std::string> headers = {"cpu_app"};
    for (const auto &gpu : gpu_suite::workloadNames())
        headers.push_back(gpu);
    TablePrinter table(headers);

    // Idle-CPU baselines per GPU app.
    std::vector<double> idle_metric;
    for (const auto &gpu : gpu_suite::workloadNames()) {
        bench::progress("idle baseline: " + gpu);
        const RunResult r = ExperimentRunner::runAveraged(
            "", gpu, bench::defaultConfig(), MeasureMode::GpuOnly,
            reps);
        idle_metric.push_back(gpu == "ubench" ? r.gpu_ssr_rate
                                              : r.gpu_runtime_ms);
    }

    std::vector<std::vector<double>> columns(
        gpu_suite::workloadNames().size());
    for (const auto &cpu : parsec::benchmarkNames()) {
        bench::progress(cpu);
        std::vector<double> row;
        std::size_t column = 0;
        for (const auto &gpu : gpu_suite::workloadNames()) {
            const RunResult r = ExperimentRunner::runAveraged(
                cpu, gpu, bench::defaultConfig(),
                MeasureMode::GpuPrimary, reps);
            const double perf = gpu == "ubench"
                ? r.gpu_ssr_rate / idle_metric[column]
                : normalizedPerf(idle_metric[column],
                                 r.gpu_runtime_ms);
            row.push_back(perf);
            columns[column++].push_back(perf);
        }
        table.addRow(cpu, row);
    }

    std::vector<double> gmeans;
    for (const auto &column : columns)
        gmeans.push_back(geomean(column));
    table.addRow("gmean", gmeans);
    table.print(std::cout);

    double worst_real = 2.0;
    for (std::size_t c = 0; c + 1 < columns.size(); ++c)
        for (const double v : columns[c])
            worst_real = std::min(worst_real, v);
    double worst_ubench = 2.0;
    for (const double v : columns.back())
        worst_ubench = std::min(worst_ubench, v);
    std::printf("\nWorst real-app cell: %.3f (paper: 0.82, "
                "sssp+streamcluster). Worst ubench cell: %.3f.\n",
                worst_real, worst_ubench);
    return 0;
}
