/**
 * @file
 * Ablation: the hardware outstanding-SSR limit.
 *
 * The paper's QoS mechanism rests on one observation: "each
 * accelerator has a hardware limit on the number of outstanding
 * SSRs", which makes backpressure possible. This harness sweeps that
 * limit and shows (1) unthrottled SSR throughput scaling with the
 * limit, and (2) that the QoS governor's effectiveness is preserved
 * regardless of the limit — it delays service, so any finite limit
 * eventually stalls the GPU.
 */

#include <cstdio>

#include "bench/harness.h"

namespace {

using namespace hiss;

double
ubenchRate(std::uint32_t limit, double qos_threshold, int reps)
{
    SystemConfig base;
    base.gpu.max_outstanding = limit;
    if (qos_threshold > 0.0)
        base.enableQos(qos_threshold);
    double sum = 0.0;
    for (int i = 0; i < reps; ++i) {
        SystemConfig config = base;
        config.seed = 1 + static_cast<std::uint64_t>(i);
        HeteroSystem sys(config);
        sys.launchGpu(gpu_suite::params("ubench"), true, true);
        sys.runUntil(msToTicks(25));
        sum += static_cast<double>(sys.gpu().faultsResolved())
            / ticksToSec(sys.now());
    }
    return sum / reps;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hiss;
    const int reps = bench::repsFromArgs(argc, argv, 2);
    bench::banner(
        "Ablation: outstanding-SSR hardware limit sweep",
        "Section VI: the limit exists on every accelerator and is "
        "the backpressure point the QoS governor exploits");

    std::printf("%-12s %16s %16s %12s\n", "limit", "rate (no QoS)",
                "rate (th_1)", "th_1/noQoS");
    for (const std::uint32_t limit : {2u, 4u, 8u, 16u, 32u, 64u}) {
        bench::progress("limit " + std::to_string(limit));
        const double free_rate = ubenchRate(limit, 0.0, reps);
        const double throttled = ubenchRate(limit, 0.01, reps);
        std::printf("%-12u %16.0f %16.0f %12.3f\n", limit, free_rate,
                    throttled,
                    free_rate > 0 ? throttled / free_rate : 0.0);
    }
    std::printf("\nThroughput grows with the limit (more latency "
                "hiding), but th_1 pins the serviced rate to the CPU "
                "budget regardless: backpressure needs only a finite "
                "limit, not a particular value.\n");
    return 0;
}
