/**
 * @file
 * Ablation: the hardware outstanding-SSR limit.
 *
 * The paper's QoS mechanism rests on one observation: "each
 * accelerator has a hardware limit on the number of outstanding
 * SSRs", which makes backpressure possible. This harness sweeps that
 * limit and shows (1) unthrottled SSR throughput scaling with the
 * limit, and (2) that the QoS governor's effectiveness is preserved
 * regardless of the limit — it delays service, so any finite limit
 * eventually stalls the GPU.
 */

#include <cstdio>
#include <vector>

#include "bench/harness.h"

int
main(int argc, char **argv)
{
    using namespace hiss;
    const int reps = bench::repsFromArgs(argc, argv, 2);
    const int jobs = bench::jobsFromArgs(argc, argv);
    bench::banner(
        "Ablation: outstanding-SSR hardware limit sweep",
        "Section VI: the limit exists on every accelerator and is "
        "the backpressure point the QoS governor exploits");

    const std::vector<std::uint32_t> limits = {2, 4, 8, 16, 32, 64};

    // One base system per limit (stable storage: base_system is held
    // by pointer until the batch runs), measured with and without the
    // QoS governor over a 25 ms ubench rate window.
    std::vector<SystemConfig> bases(limits.size());
    bench::CellBatch batch(jobs);
    std::vector<std::pair<std::size_t, std::size_t>> rate_ix;
    for (std::size_t i = 0; i < limits.size(); ++i) {
        bases[i].gpu.max_outstanding = limits[i];
        ExperimentConfig free_config = bench::defaultConfig();
        free_config.base_system = &bases[i];
        free_config.rate_window = msToTicks(25);
        ExperimentConfig qos_config = free_config;
        qos_config.qos_threshold = 0.01;
        rate_ix.push_back(
            {batch.add("", "ubench", free_config,
                       MeasureMode::GpuOnly, reps),
             batch.add("", "ubench", qos_config,
                       MeasureMode::GpuOnly, reps)});
    }
    batch.run();

    std::printf("%-12s %16s %16s %12s\n", "limit", "rate (no QoS)",
                "rate (th_1)", "th_1/noQoS");
    for (std::size_t i = 0; i < limits.size(); ++i) {
        const double free_rate = batch[rate_ix[i].first].gpu_ssr_rate;
        const double throttled = batch[rate_ix[i].second].gpu_ssr_rate;
        std::printf("%-12u %16.0f %16.0f %12.3f\n", limits[i],
                    free_rate, throttled,
                    free_rate > 0 ? throttled / free_rate : 0.0);
    }
    std::printf("\nThroughput grows with the limit (more latency "
                "hiding), but th_1 pins the serviced rate to the CPU "
                "budget regardless: backpressure needs only a finite "
                "limit, not a particular value.\n");
    return 0;
}
