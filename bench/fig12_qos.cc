/**
 * @file
 * Fig. 12: the backpressure-based QoS governor (Section VI).
 *
 * (a) CPU application performance while ubench generates SSRs, under
 *     the default (no QoS) and throttling thresholds th_25 / th_5 /
 *     th_1 (cap SSR CPU time at 25 % / 5 % / 1 %). Each bar is
 *     normalized to the app running with ubench generating no SSRs.
 *     Paper: th_1 cuts the mean CPU loss from 28 % to under 4 %.
 * (b) ubench throughput (SSR rate vs idle CPUs, unthrottled) at the
 *     same settings. Paper: th_1 leaves the accelerator at ~5 % of
 *     its unhindered throughput.
 */

#include <iostream>
#include <vector>

#include "bench/harness.h"

int
main(int argc, char **argv)
{
    using namespace hiss;
    const int reps = bench::repsFromArgs(argc, argv, 2);
    bench::banner(
        "Fig. 12: CPU QoS via SSR backpressure (default/th_25/th_5/"
        "th_1)",
        "th_1: mean CPU loss < 4 % (from 28 %); ubench throughput "
        "drops to ~5 % of unhindered");

    const std::vector<std::pair<std::string, double>> settings = {
        {"default", 0.0},
        {"th_25", 0.25},
        {"th_5", 0.05},
        {"th_1", 0.01},
    };

    bench::progress("idle-CPU unthrottled ubench rate");
    const double idle_rate =
        ExperimentRunner::runAveraged("", "ubench",
                                      bench::defaultConfig(),
                                      MeasureMode::GpuOnly, reps)
            .gpu_ssr_rate;

    std::vector<std::string> headers = {"cpu_app"};
    for (const auto &[label, threshold] : settings)
        headers.push_back(label);
    TablePrinter cpu_table(headers);
    TablePrinter gpu_table(headers);

    std::vector<std::vector<double>> cpu_cols(settings.size());
    std::vector<std::vector<double>> gpu_cols(settings.size());

    for (const auto &cpu : parsec::benchmarkNames()) {
        bench::progress(cpu);
        ExperimentConfig base = bench::defaultConfig();
        base.gpu_demand_paging = false;
        const double baseline_ms =
            ExperimentRunner::runAveraged(cpu, "ubench", base,
                                          MeasureMode::CpuPrimary,
                                          reps)
                .cpu_runtime_ms;

        std::vector<double> cpu_row;
        std::vector<double> gpu_row;
        for (std::size_t s = 0; s < settings.size(); ++s) {
            ExperimentConfig config = bench::defaultConfig();
            config.qos_threshold = settings[s].second;
            const RunResult c = ExperimentRunner::runAveraged(
                cpu, "ubench", config, MeasureMode::CpuPrimary, reps);
            const double cpu_perf =
                normalizedPerf(baseline_ms, c.cpu_runtime_ms);
            cpu_row.push_back(cpu_perf);
            cpu_cols[s].push_back(cpu_perf);

            const RunResult g = ExperimentRunner::runAveraged(
                cpu, "ubench", config, MeasureMode::GpuPrimary, reps);
            const double gpu_perf = g.gpu_ssr_rate / idle_rate;
            gpu_row.push_back(gpu_perf);
            gpu_cols[s].push_back(gpu_perf);
        }
        cpu_table.addRow(cpu, cpu_row);
        gpu_table.addRow(cpu, gpu_row);
    }

    std::vector<double> cpu_gmeans;
    std::vector<double> gpu_gmeans;
    for (std::size_t s = 0; s < settings.size(); ++s) {
        cpu_gmeans.push_back(geomean(cpu_cols[s]));
        gpu_gmeans.push_back(geomean(gpu_cols[s]));
    }
    cpu_table.addRow("gmean", cpu_gmeans);
    gpu_table.addRow("gmean", gpu_gmeans);

    std::printf("--- (a) CPU application performance "
                "(vs no-SSR baseline) ---\n");
    cpu_table.print(std::cout);
    std::printf("\n--- (b) ubench throughput "
                "(vs idle-CPU unthrottled) ---\n");
    gpu_table.print(std::cout);

    std::printf("\nMean CPU loss: default %.1f %%, th_1 %.1f %% "
                "(paper: 28 %% -> < 4 %%).\n",
                (1.0 - cpu_gmeans[0]) * 100.0,
                (1.0 - cpu_gmeans[3]) * 100.0);
    std::printf("ubench throughput at th_1: %.1f %% of unhindered "
                "(paper: ~5 %%).\n", gpu_gmeans[3] * 100.0);
    return 0;
}
