/**
 * @file
 * Snapshot-engine microbenchmarks.
 *
 * Three questions: what does a save cost, what does a restore cost,
 * and what does warm-state reuse buy a warmup-heavy sweep? The last
 * one is the headline number — SnapshotBatchWarmSweep vs
 * SnapshotColdSweep run the same rate-window grid with and without
 * the shared warm cache, and SnapshotSweepSpeedup reports the ratio
 * directly as a counter so BENCH_snapshot.json records it.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "core/hiss.h"

namespace {

using namespace hiss;

/** The save/restore subject: CPU app + demand-paging GPU, 5 ms in. */
std::unique_ptr<HeteroSystem>
buildSubject()
{
    SystemConfig config;
    config.seed = 11;
    auto sys = std::make_unique<HeteroSystem>(config);
    CpuAppParams app_params = parsec::params("x264");
    app_params.iterations = 1000;
    sys->addCpuApp(app_params).start();
    sys->launchGpu(gpu_suite::params("sssp"), true, true);
    return sys;
}

void
SnapshotSave(benchmark::State &state)
{
    auto sys = buildSubject();
    sys->runUntil(msToTicks(5));
    std::size_t bytes = 0;
    for (auto _ : state) {
        const std::string blob = sys->snapshotBytes();
        bytes = blob.size();
        benchmark::DoNotOptimize(blob.data());
    }
    state.counters["snapshot_bytes"] =
        benchmark::Counter(static_cast<double>(bytes));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(SnapshotSave)->Unit(benchmark::kMillisecond);

void
SnapshotRestore(benchmark::State &state)
{
    auto warm = buildSubject();
    warm->runUntil(msToTicks(5));
    const std::string blob = warm->snapshotBytes();
    auto target = buildSubject();
    for (auto _ : state) {
        target->restoreSnapshotBytes(blob);
        benchmark::DoNotOptimize(target->now());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(SnapshotRestore)->Unit(benchmark::kMillisecond);

/**
 * The warm-start shape: one config+seed measured at several rate
 * windows, every cell re-simulating the same long warmup. 8 cells,
 * 36 ms warmup, windows 37..44 ms.
 */
std::vector<ExperimentCell>
sweepCells(bool warm)
{
    std::vector<ExperimentCell> cells;
    for (int i = 0; i < 8; ++i) {
        ExperimentCell cell;
        cell.gpu_app = "ubench";
        cell.mode = MeasureMode::GpuOnly;
        cell.config.seed = 11;
        cell.config.rate_window = msToTicks(37.0 + i);
        cell.config.warmup_ticks = warm ? msToTicks(36.0) : 0;
        cells.push_back(cell);
    }
    return cells;
}

double
runSweep(bool warm)
{
    const auto start = std::chrono::steady_clock::now();
    const std::vector<RunResult> results =
        ExperimentBatch(1).run(sweepCells(warm));
    benchmark::DoNotOptimize(results.data());
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

void
SnapshotColdSweep(benchmark::State &state)
{
    for (auto _ : state)
        runSweep(false);
    state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(SnapshotColdSweep)->Unit(benchmark::kMillisecond);

void
SnapshotBatchWarmSweep(benchmark::State &state)
{
    for (auto _ : state)
        runSweep(true);
    state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(SnapshotBatchWarmSweep)->Unit(benchmark::kMillisecond);

/** Cold/warm wall-clock ratio, recorded as a counter per repetition
 *  so the committed baseline carries the speedup itself. */
void
SnapshotSweepSpeedup(benchmark::State &state)
{
    double cold = 0.0;
    double warm = 0.0;
    for (auto _ : state) {
        cold += runSweep(false);
        warm += runSweep(true);
    }
    state.counters["speedup"] =
        benchmark::Counter(warm > 0.0 ? cold / warm : 0.0);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(SnapshotSweepSpeedup)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

} // namespace

BENCHMARK_MAIN();
