/**
 * @file
 * Fig. 9: how the mitigation techniques affect CPU sleep states
 * while the microbenchmark generates SSRs (idle CPUs otherwise).
 *
 * Paper: no-SSR residency 86 %; default with SSRs 12 %; steering
 * raises it to ~50 % (only the irq/bottom-half cores stay awake);
 * the monolithic handler behaves similarly; coalescing alone barely
 * helps (all cores still interrupted); all three together reach
 * 57 %.
 */

#include <cstdio>

#include "bench/harness.h"

int
main(int argc, char **argv)
{
    using namespace hiss;
    const int reps = bench::repsFromArgs(argc, argv, 2);
    bench::banner(
        "Fig. 9: CC6 residency under ubench SSRs per mitigation combo",
        "no_SSR 86 %, default 12 %, steer ~50 %, coalescing alone "
        "~no help, all three 57 %");

    bench::progress("ubench without SSRs");
    ExperimentConfig base = bench::defaultConfig();
    base.gpu_demand_paging = false;
    const RunResult no_ssr = ExperimentRunner::runAveraged(
        "", "ubench", base, MeasureMode::GpuOnly, reps);
    std::printf("%-28s %12s\n", "configuration", "CC6(%)");
    std::printf("%-28s %12.1f\n", "ubench_no_SSR",
                no_ssr.cc6_fraction * 100.0);

    for (const MitigationConfig &combo :
         MitigationConfig::allCombinations()) {
        bench::progress(combo.label());
        ExperimentConfig config = bench::defaultConfig();
        config.mitigation = combo;
        const RunResult r = ExperimentRunner::runAveraged(
            "", "ubench", config, MeasureMode::GpuOnly, reps);
        std::printf("%-28s %12.1f\n", combo.label().c_str(),
                    r.cc6_fraction * 100.0);
    }
    return 0;
}
