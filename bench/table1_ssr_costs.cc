/**
 * @file
 * Table I: system service kinds and their complexity.
 *
 * The paper gives a qualitative complexity estimate per SSR kind;
 * here we measure each kind quantitatively in the model: the CPU
 * time a service consumes and its end-to-end latency through the
 * full top-half / bottom-half / kworker chain on an otherwise idle
 * system. The measured ordering must match the paper's tiers
 * (signals Low; allocation Moderate; faults Moderate-High; file
 * system and migration High).
 */

#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "os/ssr_driver.h"

namespace {

using namespace hiss;

/** A driver source we can feed arbitrary request kinds. */
class BenchSource : public RequestSource
{
  public:
    std::vector<SsrRequest>
    drain() override
    {
        std::vector<SsrRequest> out = std::move(pending);
        pending.clear();
        return out;
    }
    void ack() override {}
    std::vector<SsrRequest> pending;
};

struct KindResult
{
    double mean_cpu_us = 0.0;
    double mean_latency_us = 0.0;
};

KindResult
measureKind(ServiceKind kind, int n)
{
    EventQueue events;
    StatRegistry stats;
    SimContext ctx{events, stats, 1};
    KernelParams kparams;
    kparams.housekeeping_period = 0;
    Kernel kernel(ctx, 4, CpuCoreParams{}, kparams);
    BenchSource source;
    SsrDriver &driver =
        kernel.attachSsrSource("bench_drv", source, SsrDriverParams{});

    double latency_sum = 0.0;
    Vpn vpn = 0x1000;
    for (int i = 0; i < n; ++i) {
        const Tick before = events.now();
        Tick done_at = 0;
        SsrRequest request;
        request.id = static_cast<std::uint64_t>(i) + 1;
        request.kind = kind;
        request.vpn = vpn++;
        request.issued_at = before;
        request.on_service_complete = [&done_at](CpuCore &core) {
            done_at = core.now();
        };
        source.pending.push_back(std::move(request));
        kernel.deliverIrq(i % 4, driver.makeInterrupt());
        events.runUntil(before + msToTicks(5));
        latency_sum += ticksToUs(done_at - before);
        // Idle gap so each request is measured in isolation.
        events.runUntil(events.now() + usToTicks(300));
    }

    KindResult result;
    result.mean_latency_us = latency_sum / n;
    result.mean_cpu_us = ticksToUs(kernel.totalSsrTicks()) / n;
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hiss;
    const int reps = bench::repsFromArgs(argc, argv, 40);
    bench::banner(
        "Table I: GPU system service requests and their complexity",
        "Signals: Low. Memory allocation: Moderate. Page faults: "
        "Moderate to High. File system: High. Page migration: High.");

    struct Row
    {
        ServiceKind kind;
        const char *description;
        const char *paper_tier;
    };
    const Row rows[] = {
        {ServiceKind::Signal,
         "notify another process (S_SENDMSG)", "Low"},
        {ServiceKind::MemAlloc,
         "allocate/free memory from the GPU", "Moderate"},
        {ServiceKind::PageFault,
         "demand-page an un-pinned GPU access", "Moderate-High"},
        {ServiceKind::FileRead,
         "access/modify files from the GPU", "High"},
        {ServiceKind::PageMigration,
         "GPU-initiated page migration", "High"},
    };

    std::printf("%-16s %-38s %-14s %12s %14s\n", "SSR", "description",
                "paper tier", "CPU us/req", "latency us");
    double previous_cpu = 0.0;
    bool monotone = true;
    for (const Row &row : rows) {
        bench::progress(std::string("measuring ")
                        + serviceKindName(row.kind));
        const KindResult r = measureKind(row.kind, reps);
        std::printf("%-16s %-38s %-14s %12.2f %14.2f\n",
                    serviceKindName(row.kind), row.description,
                    row.paper_tier, r.mean_cpu_us, r.mean_latency_us);
        if (r.mean_cpu_us < previous_cpu)
            monotone = false;
        previous_cpu = r.mean_cpu_us;
    }
    std::printf("\nMeasured CPU cost %s with the paper's "
                "complexity tiers.\n",
                monotone ? "increases monotonically, consistent"
                         : "is NOT monotone; check calibration");
    return 0;
}
