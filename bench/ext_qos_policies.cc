/**
 * @file
 * Extension: throttling-policy comparison.
 *
 * The paper's governor applies exponential backoff (Fig. 11) and
 * leaves "more advanced QoS techniques" to future work. This
 * harness compares that policy against a token-bucket variant at
 * the same budgets: both must bound the SSR CPU fraction, but the
 * token bucket services requests at a steadier rate (lower fault
 * latency jitter) where exponential backoff alternates bursts and
 * long stalls.
 */

#include <cstdio>

#include "bench/harness.h"

namespace {

using namespace hiss;

struct Outcome
{
    double ssr_fraction = 0.0;
    double faults_per_sec = 0.0;
    double latency_mean_us = 0.0;
    double latency_sd_us = 0.0;
};

Outcome
run(ThrottlePolicy policy, double threshold, std::uint64_t seed)
{
    SystemConfig config;
    config.seed = seed;
    config.enableQos(threshold);
    config.kernel.qos.policy = policy;
    HeteroSystem sys(config);

    CpuAppParams app_params = parsec::params("facesim");
    app_params.iterations = 1'000'000'000ULL;
    CpuApp &app = sys.addCpuApp(app_params);
    app.start();
    sys.launchGpu(gpu_suite::params("ubench"), true, true);
    sys.runUntil(msToTicks(30));
    sys.finalizeStats();

    Outcome out;
    Tick ssr = 0;
    for (int c = 0; c < sys.kernel().numCores(); ++c)
        ssr += sys.kernel().core(c).ssrTicks();
    out.ssr_fraction = static_cast<double>(ssr)
        / (4.0 * static_cast<double>(sys.now()));
    out.faults_per_sec =
        static_cast<double>(sys.gpu().faultsResolved())
        / ticksToSec(sys.now());
    const auto *latency = dynamic_cast<const Distribution *>(
        sys.stats().find("iommu.fault_latency"));
    if (latency != nullptr && latency->count() > 0) {
        out.latency_mean_us = latency->mean() / 1000.0;
        out.latency_sd_us = latency->stddev() / 1000.0;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hiss;
    (void)argc;
    (void)argv;
    bench::banner(
        "Extension: exponential backoff vs token-bucket throttling",
        "Section VI future work: 'more advanced QoS techniques are "
        "warranted'");

    std::printf("%-12s %-10s %12s %12s %14s %14s\n", "policy",
                "budget", "ssr_cpu(%)", "faults/s", "latency_us",
                "latency_sd");
    for (const double threshold : {0.25, 0.05, 0.01}) {
        for (const auto &[name, policy] :
             {std::pair<const char *, ThrottlePolicy>{
                  "backoff", ThrottlePolicy::ExponentialBackoff},
              std::pair<const char *, ThrottlePolicy>{
                  "bucket", ThrottlePolicy::TokenBucket}}) {
            bench::progress(std::string(name) + " @ "
                            + std::to_string(threshold));
            const Outcome out = run(policy, threshold, 1);
            std::printf("%-12s %-10.2f %12.1f %12.0f %14.1f %14.1f\n",
                        name, threshold, out.ssr_fraction * 100.0,
                        out.faults_per_sec, out.latency_mean_us,
                        out.latency_sd_us);
        }
    }
    std::printf("\nBoth policies respect the budget; the token "
                "bucket trades the backoff policy's burst-and-stall "
                "pattern for a steadier service rate (lower latency "
                "standard deviation at tight budgets).\n");
    return 0;
}
