/**
 * @file
 * Fig. 6: performance of the three GPU-SSR-overhead mitigations,
 * each in isolation, normalized to the default configuration.
 *
 *   (a/b) interrupt steering to a single core  (Section V-A)
 *   (c/d) interrupt coalescing, 13 us window   (Section V-B)
 *   (e/f) monolithic bottom-half handler       (Section V-C)
 *
 * Paper shapes: steering neither universally helps nor hurts CPU
 * apps and bottlenecks ubench's GPU throughput; coalescing helps CPU
 * under continuous interrupts (+13 % with sssp) but can slow
 * latency-bound GPU apps by up to 50 %; the monolithic handler
 * speeds the GPU (up to 2.3x) at the cost of more hardirq-context
 * CPU overhead under ubench (+35 %).
 */

#include <iostream>
#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include "bench/harness.h"

namespace {

using namespace hiss;

double
gpuMetric(const RunResult &r, const std::string &gpu)
{
    return gpu == "ubench" ? r.gpu_ssr_rate : 1.0 / r.gpu_runtime_ms;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hiss;
    const int reps = bench::repsFromArgs(argc, argv, 1);
    const bool full = bench::fullSweep(argc, argv);
    const int jobs = bench::jobsFromArgs(argc, argv);
    bench::banner(
        "Fig. 6: mitigation techniques in isolation "
        "(normalized to default)",
        "a/b steering, c/d coalescing (13 us), e/f monolithic bottom "
        "half; see file header for the paper's shapes");

    const std::vector<std::string> cpu_apps = full
        ? parsec::benchmarkNames()
        : std::vector<std::string>{"blackscholes", "facesim",
                                   "fluidanimate", "raytrace",
                                   "streamcluster", "swaptions",
                                   "x264"};
    const auto &gpu_apps = gpu_suite::workloadNames();

    MitigationConfig steer;
    steer.steer_to_single_core = true;
    MitigationConfig coalesce;
    coalesce.interrupt_coalescing = true;
    MitigationConfig monolithic;
    monolithic.monolithic_bottom_half = true;
    const std::vector<std::pair<std::string, MitigationConfig>> cases =
        {{"steer", steer},
         {"coalesce", coalesce},
         {"monolithic", monolithic}};

    // Submit the whole grid — default-configuration references plus
    // every mitigation panel — as one parallel batch.
    bench::CellBatch batch(jobs);
    std::map<std::pair<std::string, std::string>, std::size_t> cpu_ref;
    std::map<std::pair<std::string, std::string>, std::size_t> gpu_ref;
    for (const auto &cpu : cpu_apps) {
        for (const auto &gpu : gpu_apps) {
            cpu_ref[{cpu, gpu}] = batch.add(
                cpu, gpu, bench::defaultConfig(),
                MeasureMode::CpuPrimary, reps);
            gpu_ref[{cpu, gpu}] = batch.add(
                cpu, gpu, bench::defaultConfig(),
                MeasureMode::GpuPrimary, reps);
        }
    }
    std::map<std::tuple<std::string, std::string, std::string>,
             std::pair<std::size_t, std::size_t>> case_cells;
    for (const auto &[label, mitigation] : cases) {
        for (const auto &cpu : cpu_apps) {
            for (const auto &gpu : gpu_apps) {
                ExperimentConfig config = bench::defaultConfig();
                config.mitigation = mitigation;
                const std::size_t c = batch.add(
                    cpu, gpu, config, MeasureMode::CpuPrimary, reps);
                const std::size_t g = batch.add(
                    cpu, gpu, config, MeasureMode::GpuPrimary, reps);
                case_cells[{label, cpu, gpu}] = {c, g};
            }
        }
    }
    batch.run();

    for (const auto &[label, mitigation] : cases) {
        (void)mitigation;
        std::vector<std::string> headers = {"cpu_app"};
        for (const auto &gpu : gpu_apps)
            headers.push_back(gpu);
        TablePrinter cpu_table(headers);
        TablePrinter gpu_table(headers);

        for (const auto &cpu : cpu_apps) {
            std::vector<double> cpu_row;
            std::vector<double> gpu_row;
            for (const auto &gpu : gpu_apps) {
                const auto &[ci, gi] = case_cells[{label, cpu, gpu}];
                cpu_row.push_back(normalizedPerf(
                    batch[cpu_ref[{cpu, gpu}]].cpu_runtime_ms,
                    batch[ci].cpu_runtime_ms));
                gpu_row.push_back(
                    gpuMetric(batch[gi], gpu)
                    / gpuMetric(batch[gpu_ref[{cpu, gpu}]], gpu));
            }
            cpu_table.addRow(cpu, cpu_row);
            gpu_table.addRow(cpu, gpu_row);
        }

        std::printf("\n--- %s: CPU app performance vs default ---\n",
                    label.c_str());
        cpu_table.print(std::cout);
        std::printf("\n--- %s: GPU app performance vs default ---\n",
                    label.c_str());
        gpu_table.print(std::cout);
    }

    if (!full)
        std::printf("\n(7 of 13 CPU apps shown; pass --full for the "
                    "complete sweep)\n");
    return 0;
}
