/**
 * @file
 * Fig. 4: CPU low-power (CC6) sleep-state residency with and without
 * GPU system service requests, while no CPU-only work runs.
 *
 * Paper headlines: SSRs always reduce sleep; bfs loses only ~14
 * points (clustered early faults), the other four applications lose
 * 23-30 points, and the microbenchmark collapses residency from
 * 86 % to 12 %.
 */

#include <cstdio>

#include "bench/harness.h"

int
main(int argc, char **argv)
{
    using namespace hiss;
    const int reps = bench::repsFromArgs(argc, argv, 2);
    bench::banner(
        "Fig. 4: CC6 residency with and without GPU SSRs (idle CPUs)",
        "no_SSR ~86 %; bfs drops ~14 pts; bpt/spmv/sssp/xsbench drop "
        "23-30 pts; ubench 86 % -> 12 %");

    std::printf("%-10s %12s %12s %10s\n", "gpu_app", "no_SSR(%)",
                "gpu_SSR(%)", "drop(pts)");
    for (const auto &gpu : gpu_suite::workloadNames()) {
        bench::progress(gpu);
        ExperimentConfig base = bench::defaultConfig();
        base.gpu_demand_paging = false;
        const RunResult no_ssr = ExperimentRunner::runAveraged(
            "", gpu, base, MeasureMode::GpuOnly, reps);
        const RunResult ssr = ExperimentRunner::runAveraged(
            "", gpu, bench::defaultConfig(), MeasureMode::GpuOnly,
            reps);
        std::printf("%-10s %12.1f %12.1f %10.1f\n", gpu.c_str(),
                    no_ssr.cc6_fraction * 100.0,
                    ssr.cc6_fraction * 100.0,
                    (no_ssr.cc6_fraction - ssr.cc6_fraction) * 100.0);
    }
    return 0;
}
