/**
 * @file
 * Ablation: interrupt-coalescing window sweep.
 *
 * The paper fixes the IOMMU's coalescing window at its 13 us maximum
 * (PCIe register D0F2xF4_x93) and cites Ahmad et al.'s coalescing
 * studies, noting "similar studies for accelerators are warranted" —
 * this harness is that study in the model: it sweeps the window and
 * reports the CPU-protection / GPU-latency trade-off for a
 * latency-sensitive GPU app and for the throughput microbenchmark.
 */

#include <cstdio>

#include "bench/harness.h"

int
main(int argc, char **argv)
{
    using namespace hiss;
    const int reps = bench::repsFromArgs(argc, argv, 1);
    bench::banner(
        "Ablation: coalescing-window sweep (0, 2, 5, 13, 25, 50 us)",
        "Paper Section V-B fixes 13 us; the trade-off curve is the "
        "warranted follow-up study");

    const Tick windows_us[] = {0, 2, 5, 13, 25, 50};

    // References: no coalescing.
    ExperimentConfig off = bench::defaultConfig();
    const double cpu_ref = ExperimentRunner::runAveraged(
        "facesim", "sssp", off, MeasureMode::CpuPrimary, reps)
        .cpu_runtime_ms;
    const double sssp_ref = ExperimentRunner::runAveraged(
        "facesim", "sssp", off, MeasureMode::GpuPrimary, reps)
        .gpu_runtime_ms;
    const double ubench_ref = ExperimentRunner::runAveraged(
        "facesim", "ubench", off, MeasureMode::GpuPrimary, reps)
        .gpu_ssr_rate;

    std::printf("%-10s %12s %12s %14s %14s\n", "window_us",
                "cpu_perf", "sssp_perf", "ubench_perf",
                "irqs_per_fault");
    for (const Tick window : windows_us) {
        bench::progress("window " + std::to_string(window) + " us");
        ExperimentConfig config = bench::defaultConfig();
        config.mitigation.interrupt_coalescing = window > 0;
        config.mitigation.coalesce_window = usToTicks(
            static_cast<double>(window));

        const RunResult cpu = ExperimentRunner::runAveraged(
            "facesim", "sssp", config, MeasureMode::CpuPrimary, reps);
        const RunResult sssp = ExperimentRunner::runAveraged(
            "facesim", "sssp", config, MeasureMode::GpuPrimary, reps);
        const RunResult ubench = ExperimentRunner::runAveraged(
            "facesim", "ubench", config, MeasureMode::GpuPrimary,
            reps);
        const double irqs_per_fault = ubench.faults_resolved > 0
            ? static_cast<double>(ubench.ssr_interrupts)
                / static_cast<double>(ubench.faults_resolved)
            : 0.0;
        std::printf("%-10llu %12.3f %12.3f %14.3f %14.3f\n",
                    static_cast<unsigned long long>(window),
                    normalizedPerf(cpu_ref, cpu.cpu_runtime_ms),
                    normalizedPerf(sssp.gpu_runtime_ms, sssp_ref) > 0
                        ? sssp_ref / sssp.gpu_runtime_ms
                        : 0.0,
                    ubench.gpu_ssr_rate / ubench_ref, irqs_per_fault);
    }
    // Adaptive coalescing (extension): waits ~4x the recent PPR
    // inter-arrival, capped at 13 us.
    bench::progress("adaptive");
    ExperimentConfig adaptive = bench::defaultConfig();
    adaptive.mitigation.interrupt_coalescing = true;
    adaptive.mitigation.coalesce_window = usToTicks(13);
    SystemConfig adaptive_base;
    adaptive_base.iommu.adaptive_coalescing = true;
    adaptive.base_system = &adaptive_base;
    adaptive_base.applyMitigations(adaptive.mitigation);
    adaptive_base.iommu.adaptive_coalescing = true;
    const RunResult acpu = ExperimentRunner::runAveraged(
        "facesim", "sssp", adaptive, MeasureMode::CpuPrimary, reps);
    const RunResult asssp = ExperimentRunner::runAveraged(
        "facesim", "sssp", adaptive, MeasureMode::GpuPrimary, reps);
    const RunResult aubench = ExperimentRunner::runAveraged(
        "facesim", "ubench", adaptive, MeasureMode::GpuPrimary, reps);
    std::printf("%-10s %12.3f %12.3f %14.3f %14.3f\n", "adaptive",
                normalizedPerf(cpu_ref, acpu.cpu_runtime_ms),
                sssp_ref / asssp.gpu_runtime_ms,
                aubench.gpu_ssr_rate / ubench_ref,
                aubench.faults_resolved > 0
                    ? static_cast<double>(aubench.ssr_interrupts)
                        / static_cast<double>(aubench.faults_resolved)
                    : 0.0);

    std::printf("\nLonger windows shed interrupts (CPU up) but add "
                "latency to faults on the GPU's critical path. The "
                "adaptive policy keeps most of the fixed window's "
                "interrupt reduction at a fraction of the GPU "
                "latency cost.\n");
    return 0;
}
