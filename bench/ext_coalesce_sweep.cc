/**
 * @file
 * Ablation: interrupt-coalescing window sweep.
 *
 * The paper fixes the IOMMU's coalescing window at its 13 us maximum
 * (PCIe register D0F2xF4_x93) and cites Ahmad et al.'s coalescing
 * studies, noting "similar studies for accelerators are warranted" —
 * this harness is that study in the model: it sweeps the window and
 * reports the CPU-protection / GPU-latency trade-off for a
 * latency-sensitive GPU app and for the throughput microbenchmark.
 */

#include <array>
#include <cstdio>

#include "bench/harness.h"

int
main(int argc, char **argv)
{
    using namespace hiss;
    const int reps = bench::repsFromArgs(argc, argv, 1);
    const int jobs = bench::jobsFromArgs(argc, argv);
    bench::banner(
        "Ablation: coalescing-window sweep (0, 2, 5, 13, 25, 50 us)",
        "Paper Section V-B fixes 13 us; the trade-off curve is the "
        "warranted follow-up study");

    const Tick windows_us[] = {0, 2, 5, 13, 25, 50};

    // Submit references, the window sweep, and the adaptive policy as
    // one parallel batch: (cpu, sssp, ubench) triples per point.
    bench::CellBatch batch(jobs);
    auto add_point = [&](const ExperimentConfig &config) {
        return std::array<std::size_t, 3>{
            batch.add("facesim", "sssp", config,
                      MeasureMode::CpuPrimary, reps),
            batch.add("facesim", "sssp", config,
                      MeasureMode::GpuPrimary, reps),
            batch.add("facesim", "ubench", config,
                      MeasureMode::GpuPrimary, reps)};
    };

    const auto ref_ix = add_point(bench::defaultConfig());
    std::vector<std::array<std::size_t, 3>> window_ix;
    for (const Tick window : windows_us) {
        ExperimentConfig config = bench::defaultConfig();
        config.mitigation.interrupt_coalescing = window > 0;
        config.mitigation.coalesce_window = usToTicks(
            static_cast<double>(window));
        window_ix.push_back(add_point(config));
    }
    // Adaptive coalescing (extension): waits ~4x the recent PPR
    // inter-arrival, capped at 13 us.
    ExperimentConfig adaptive = bench::defaultConfig();
    adaptive.mitigation.interrupt_coalescing = true;
    adaptive.mitigation.coalesce_window = usToTicks(13);
    SystemConfig adaptive_base; // Must outlive batch.run().
    adaptive_base.iommu.adaptive_coalescing = true;
    adaptive.base_system = &adaptive_base;
    adaptive_base.applyMitigations(adaptive.mitigation);
    adaptive_base.iommu.adaptive_coalescing = true;
    const auto adaptive_ix = add_point(adaptive);
    batch.run();

    const double cpu_ref = batch[ref_ix[0]].cpu_runtime_ms;
    const double sssp_ref = batch[ref_ix[1]].gpu_runtime_ms;
    const double ubench_ref = batch[ref_ix[2]].gpu_ssr_rate;

    auto print_row = [&](const std::string &label,
                         const std::array<std::size_t, 3> &ix) {
        const RunResult &cpu = batch[ix[0]];
        const RunResult &sssp = batch[ix[1]];
        const RunResult &ubench = batch[ix[2]];
        const double irqs_per_fault = ubench.faults_resolved > 0
            ? static_cast<double>(ubench.ssr_interrupts)
                / static_cast<double>(ubench.faults_resolved)
            : 0.0;
        std::printf("%-10s %12.3f %12.3f %14.3f %14.3f\n",
                    label.c_str(),
                    normalizedPerf(cpu_ref, cpu.cpu_runtime_ms),
                    sssp.gpu_runtime_ms > 0
                        ? sssp_ref / sssp.gpu_runtime_ms
                        : 0.0,
                    ubench.gpu_ssr_rate / ubench_ref, irqs_per_fault);
    };

    std::printf("%-10s %12s %12s %14s %14s\n", "window_us",
                "cpu_perf", "sssp_perf", "ubench_perf",
                "irqs_per_fault");
    for (std::size_t w = 0; w < window_ix.size(); ++w)
        print_row(std::to_string(windows_us[w]), window_ix[w]);
    print_row("adaptive", adaptive_ix);

    std::printf("\nLonger windows shed interrupts (CPU up) but add "
                "latency to faults on the GPU's critical path. The "
                "adaptive policy keeps most of the fixed window's "
                "interrupt reduction at a fraction of the GPU "
                "latency cost.\n");
    return 0;
}
