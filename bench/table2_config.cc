/**
 * @file
 * Table II: test system configuration.
 *
 * Prints the simulated testbed alongside the paper's hardware so the
 * substitution is explicit.
 */

#include <cstdio>

#include "bench/harness.h"

int
main()
{
    using namespace hiss;
    bench::banner("Table II: Test System Configuration",
                  "AMD A10-7850K: 4x 3.7 GHz Family 15h cores, "
                  "720 MHz GCN 1.1 GPU, 32 GB DDR3-1866, "
                  "Ubuntu 14.04 + Linux 4.0 + HSA driver v1.6.1");

    std::printf("Paper testbed          | This reproduction\n");
    std::printf("-----------------------+------------------------------"
                "---\n");
    std::printf("AMD A10-7850K SoC      | hiss discrete-event SoC "
                "simulator\n");
    std::printf("4x 3.7 GHz CPU cores   | 4 core models @ 3.7 GHz\n");
    std::printf("720 MHz GCN 1.1 GPU    | GPU device model @ 720 MHz\n");
    std::printf("32 GB DDR3-1866        | 32 GiB simulated DRAM "
                "(4 KiB frames)\n");
    std::printf("Linux 4.0 + HSA v1.6.1 | kernel model: split "
                "top/bottom-half IOMMU driver,\n");
    std::printf("                       | per-CPU kworkers, CFS-like "
                "scheduler, CC6 governor\n\n");

    SystemConfig config;
    std::printf("%s\n", config.describe().c_str());
    return 0;
}
