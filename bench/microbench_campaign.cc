/**
 * @file
 * Campaign-engine microbenchmarks.
 *
 * Three questions: what does the per-cell bookkeeping (key + framed
 * record encode/decode) cost, what does a cold grid cost end to end,
 * and what does a cache-hit resume buy? The last is the headline —
 * CampaignResumeSpeedup runs the same grid cold (empty cache) and
 * resumed (warm cache) and records the wall-clock ratio as a
 * counter, which tools/ci.sh bench gates at >= 5x: a resume that
 * re-simulates anything it already has defeats the engine's point.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/hiss.h"

namespace {

using namespace hiss;
using namespace hiss::campaign;

/** The benchmark grid: 8 GPU-only ubench cells, 4 ms windows. */
GridSpec
benchGrid()
{
    GridSpec spec;
    spec.name = "bench";
    spec.gpu_apps = {"ubench"};
    spec.seeds = {11, 12, 13, 14};
    spec.qos_thresholds = {0.0, 0.05};
    spec.duration_ms = 4.0;
    return spec;
}

void
resetDir(const CampaignEngine &engine)
{
    const ResultCache cache(engine.cacheDir());
    for (const std::string &key : cache.listKeys())
        std::remove(cache.recordPath(key).c_str());
}

void
CampaignCellKey(benchmark::State &state)
{
    const std::vector<ExperimentCell> cells = benchGrid().buildCells();
    std::uint64_t digest = 0;
    for (auto _ : state) {
        for (const ExperimentCell &cell : cells)
            digest ^= cellKey(cell);
        benchmark::DoNotOptimize(digest);
    }
    state.SetItemsProcessed(state.iterations()
                            * static_cast<long>(cells.size()));
}
BENCHMARK(CampaignCellKey)->Unit(benchmark::kMicrosecond);

void
CampaignRecordRoundTrip(benchmark::State &state)
{
    CellOutcome outcome;
    outcome.ok = true;
    outcome.result.elapsed_ms = 4.0;
    outcome.result.ssr_irqs_per_core = {1, 2, 3, 4};
    const std::string canonical =
        canonicalCellText(benchGrid().buildCells()[0]);
    for (auto _ : state) {
        const std::string blob =
            ResultCache::encode(canonical, outcome);
        std::string stored;
        const CellOutcome back = ResultCache::decode(blob, stored);
        benchmark::DoNotOptimize(back.result.elapsed_ms);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(CampaignRecordRoundTrip)->Unit(benchmark::kMicrosecond);

double
runCampaign(const CampaignEngine &engine, bool cold)
{
    if (cold)
        resetDir(engine);
    CampaignOptions options;
    options.jobs = 1;
    const auto start = std::chrono::steady_clock::now();
    const CampaignReport report = engine.run(options);
    benchmark::DoNotOptimize(report.executed);
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

void
CampaignColdGrid(benchmark::State &state)
{
    const CampaignEngine engine("/tmp/hiss_bench_campaign");
    engine.build(benchGrid());
    for (auto _ : state)
        runCampaign(engine, true);
    state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(CampaignColdGrid)->Unit(benchmark::kMillisecond);

void
CampaignWarmResume(benchmark::State &state)
{
    const CampaignEngine engine("/tmp/hiss_bench_campaign");
    engine.build(benchGrid());
    runCampaign(engine, true); // populate the cache once
    for (auto _ : state)
        runCampaign(engine, false);
    state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(CampaignWarmResume)->Unit(benchmark::kMillisecond);

/** Cold/resume wall-clock ratio as a counter, like
 *  SnapshotSweepSpeedup: the committed baseline carries the speedup
 *  itself and the CI bench gate enforces >= 5x. */
void
CampaignResumeSpeedup(benchmark::State &state)
{
    const CampaignEngine engine("/tmp/hiss_bench_campaign");
    engine.build(benchGrid());
    double cold = 0.0;
    double resumed = 0.0;
    for (auto _ : state) {
        cold += runCampaign(engine, true);
        resumed += runCampaign(engine, false);
    }
    state.counters["speedup"] =
        benchmark::Counter(resumed > 0.0 ? cold / resumed : 0.0);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(CampaignResumeSpeedup)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

} // namespace

BENCHMARK_MAIN();
