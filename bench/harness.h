/**
 * @file
 * Shared helpers for the per-figure benchmark harnesses.
 *
 * Each bench binary regenerates one table or figure from the paper:
 * it runs the relevant workload pairs through ExperimentRunner and
 * prints the same rows/series the paper reports, normalized the same
 * way. Absolute numbers differ from the paper's hardware testbed;
 * the shapes are the reproduction target (see EXPERIMENTS.md).
 */

#ifndef HISS_BENCH_HARNESS_H_
#define HISS_BENCH_HARNESS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "core/hiss.h"

namespace hiss {
namespace bench {

/** Parse "--reps N" / a bare integer from argv (default @p fallback). */
inline int
repsFromArgs(int argc, char **argv, int fallback)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--reps" && i + 1 < argc)
            return std::atoi(argv[i + 1]);
        if (!arg.empty() && arg[0] != '-')
            return std::atoi(arg.c_str());
    }
    return fallback;
}

/** True if "--full" was passed (complete sweeps instead of subsets). */
inline bool
fullSweep(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--full")
            return true;
    return false;
}

/** Print the standard figure banner. */
inline void
banner(const char *figure, const char *claim)
{
    std::printf("================================================="
                "=============\n");
    std::printf("%s\n", figure);
    std::printf("Paper reference: %s\n", claim);
    std::printf("================================================="
                "=============\n\n");
}

/** Progress note on stderr (kept off stdout so tables stay clean). */
inline void
progress(const std::string &what)
{
    std::fprintf(stderr, "  [bench] %s\n", what.c_str());
}

/**
 * Parse "--jobs N" from argv. Defaults to all hardware threads
 * (0 = let ExperimentBatch pick); results are bit-identical at any
 * job count, so parallel execution is always safe.
 */
inline int
jobsFromArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--jobs" && i + 1 < argc)
            return std::atoi(argv[i + 1]);
    return 0;
}

/** Default experiment config shared by the harnesses. */
inline ExperimentConfig
defaultConfig(std::uint64_t seed = 1)
{
    ExperimentConfig config;
    config.seed = seed;
    return config;
}

/**
 * Collects experiment cells, runs them as one parallel batch, and
 * serves the results by the index add() returned. The whole grid is
 * submitted before anything runs, so the work-stealing pool sees the
 * full width of the figure's grid at once.
 */
class CellBatch
{
  public:
    explicit CellBatch(int jobs = 0) : jobs_(jobs) {}

    /** Queue one cell; @return its result index. */
    std::size_t
    add(const std::string &cpu_app, const std::string &gpu_app,
        const ExperimentConfig &config, MeasureMode mode, int reps = 1)
    {
        cells_.push_back({cpu_app, gpu_app, config, mode, reps});
        return cells_.size() - 1;
    }

    /** Run all queued cells (noting progress on stderr). */
    void
    run()
    {
        const ExperimentBatch batch(jobs_);
        progress("running " + std::to_string(cells_.size())
                 + " experiment cells on "
                 + std::to_string(batch.jobs()) + " jobs");
        results_ = batch.run(cells_);
    }

    /** Result of the cell whose add() returned @p index. */
    const RunResult &
    operator[](std::size_t index) const
    {
        return results_.at(index);
    }

  private:
    int jobs_;
    std::vector<ExperimentCell> cells_;
    std::vector<RunResult> results_;
};

} // namespace bench
} // namespace hiss

#endif // HISS_BENCH_HARNESS_H_
