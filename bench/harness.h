/**
 * @file
 * Shared helpers for the per-figure benchmark harnesses.
 *
 * Each bench binary regenerates one table or figure from the paper:
 * it runs the relevant workload pairs through ExperimentRunner and
 * prints the same rows/series the paper reports, normalized the same
 * way. Absolute numbers differ from the paper's hardware testbed;
 * the shapes are the reproduction target (see EXPERIMENTS.md).
 */

#ifndef HISS_BENCH_HARNESS_H_
#define HISS_BENCH_HARNESS_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/hiss.h"

namespace hiss {
namespace bench {

/** Parse "--reps N" / a bare integer from argv (default @p fallback). */
inline int
repsFromArgs(int argc, char **argv, int fallback)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--reps" && i + 1 < argc)
            return std::atoi(argv[i + 1]);
        if (!arg.empty() && arg[0] != '-')
            return std::atoi(arg.c_str());
    }
    return fallback;
}

/** True if "--full" was passed (complete sweeps instead of subsets). */
inline bool
fullSweep(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--full")
            return true;
    return false;
}

/** Print the standard figure banner. */
inline void
banner(const char *figure, const char *claim)
{
    std::printf("================================================="
                "=============\n");
    std::printf("%s\n", figure);
    std::printf("Paper reference: %s\n", claim);
    std::printf("================================================="
                "=============\n\n");
}

/** Progress note on stderr (kept off stdout so tables stay clean). */
inline void
progress(const std::string &what)
{
    std::fprintf(stderr, "  [bench] %s\n", what.c_str());
}

/** Default experiment config shared by the harnesses. */
inline ExperimentConfig
defaultConfig(std::uint64_t seed = 1)
{
    ExperimentConfig config;
    config.seed = seed;
    return config;
}

} // namespace bench
} // namespace hiss

#endif // HISS_BENCH_HARNESS_H_
